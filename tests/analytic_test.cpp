// Tests for the analytic models (E1/E2/E3) including the cross-check
// of the analytic Ambit throughput against the cycle-level simulator.
#include <gtest/gtest.h>

#include "analytic/models.h"
#include "common/energy_constants.h"
#include "dram/memory_system.h"

namespace pim::analytic {
namespace {

TEST(StreamingDeviceTest, TrafficFactors) {
  const streaming_device cpu = skylake_cpu();
  EXPECT_DOUBLE_EQ(cpu.traffic_factor(dram::bulk_op::and_op), 4.0);
  EXPECT_DOUBLE_EQ(cpu.traffic_factor(dram::bulk_op::not_op), 3.0);
  const streaming_device gpu = gtx745_gpu();
  EXPECT_DOUBLE_EQ(gpu.traffic_factor(dram::bulk_op::and_op), 3.0);
  EXPECT_DOUBLE_EQ(gpu.traffic_factor(dram::bulk_op::not_op), 2.0);
}

TEST(StreamingDeviceTest, ThroughputIsBandwidthOverTraffic) {
  const streaming_device cpu = skylake_cpu();
  EXPECT_NEAR(cpu.throughput_gbps(dram::bulk_op::and_op),
              34.1 * 0.8 / 4.0, 1e-9);
}

TEST(AmbitDeviceTest, ThroughputScalesWithBanksAndSteps) {
  const ambit_device eight = ambit_ddr3(8);
  const ambit_device one = ambit_ddr3(1);
  for (dram::bulk_op op : dram::all_bulk_ops()) {
    EXPECT_NEAR(eight.throughput_gbps(op) / one.throughput_gbps(op), 8.0,
                1e-9);
  }
  // NOT (2 steps) is exactly twice as fast as AND (4 steps).
  EXPECT_NEAR(eight.throughput_gbps(dram::bulk_op::not_op),
              2.0 * eight.throughput_gbps(dram::bulk_op::and_op), 1e-9);
}

TEST(AmbitDeviceTest, AapLatencyIsTrasPlusTrp) {
  const ambit_device d = ambit_ddr3();
  const dram::timing_params t = dram::ddr3_1600();
  EXPECT_EQ(d.aap_ps(), (t.tras + t.trp) * t.tck_ps);
  EXPECT_NEAR(static_cast<double>(d.aap_ps()), 48750.0, 1.0);  // ~49 ns
}

// --- The paper's headline numbers (E1, E2, E3) -------------------------

TEST(HeadlineTest, FortyFourTimesVersusSkylake) {
  const double speedup = mean_speedup(ambit_ddr3(), skylake_cpu());
  EXPECT_NEAR(speedup, 44.0, 5.0);
}

TEST(HeadlineTest, ThirtyTwoTimesVersusGtx745) {
  const double speedup = mean_speedup(ambit_ddr3(), gtx745_gpu());
  EXPECT_NEAR(speedup, 32.0, 5.0);
}

TEST(HeadlineTest, TenTimesVersusHmcLogicLayer) {
  const double speedup = mean_speedup(ambit_hmc(), hmc_logic_layer());
  EXPECT_NEAR(speedup, 9.7, 2.0);
}

TEST(HeadlineTest, ThirtyFiveTimesEnergyVersusDdr3) {
  const double reduction =
      mean_energy_reduction(ambit_ddr3(), ddr3_interface(),
                            dram::ddr3_dimm(), energy::offchip_io_pj_per_bit);
  EXPECT_NEAR(reduction, 35.0, 7.0);
}

TEST(HeadlineTest, MinimalDecoderHurtsXorThroughput) {
  const ambit_device rich = ambit_ddr3(8, true);
  const ambit_device minimal = ambit_ddr3(8, false);
  EXPECT_GT(rich.throughput_gbps(dram::bulk_op::xor_op),
            2.0 * minimal.throughput_gbps(dram::bulk_op::xor_op));
  EXPECT_DOUBLE_EQ(rich.throughput_gbps(dram::bulk_op::and_op),
                   minimal.throughput_gbps(dram::bulk_op::and_op));
}

// --- cross-validation: analytic Ambit vs cycle-level simulator --------

TEST(CrossCheckTest, CycleSimulatorMatchesAnalyticThroughput) {
  dram::organization org;
  org.channels = 1;
  org.ranks = 1;
  org.banks = 8;
  org.subarrays = 8;
  org.rows = 1024;
  org.columns = 128;  // 8 KiB rows, as the analytic model assumes
  dram::memory_system mem(org, dram::ddr3_1600());
  dram::ambit_allocator alloc(org);
  dram::ambit_engine engine(mem);

  const int rows_per_bank = 4;
  const bits size = org.row_bits() * 8 * rows_per_bank;
  auto group = alloc.allocate_group(size, 3);
  const cycles before = mem.now_cycles();
  engine.execute(dram::bulk_op::and_op, group[0], &group[1], group[2]);
  mem.drain();
  const double elapsed_ps = static_cast<double>(
      (mem.now_cycles() - before) * dram::ddr3_1600().tck_ps);
  const double simulated_gbps =
      static_cast<double>(size / 8) / elapsed_ps * 1e3;
  const double analytic_gbps =
      ambit_ddr3(8).throughput_gbps(dram::bulk_op::and_op);
  // Within 20%: the simulator adds command-bus serialization and
  // refresh that the closed form ignores.
  EXPECT_NEAR(simulated_gbps, analytic_gbps, analytic_gbps * 0.20);
}

}  // namespace
}  // namespace pim::analytic
