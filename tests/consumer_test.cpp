// Tests for the consumer-workload kernels (functional correctness) and
// the PIM offload analysis.
#include <gtest/gtest.h>

#include "consumer/kernels.h"
#include "consumer/workloads.h"

namespace pim::consumer {
namespace {

cpu::access_sink null_sink() {
  return [](std::uint64_t, bool) {};
}

// ---------------------------------------------------------------------------
// texture tiling
// ---------------------------------------------------------------------------

TEST(TextureTilingTest, IsAPermutationOfTheSurface) {
  texture_tiling_kernel k(64, 64);
  k.run(null_sink());
  // Every linear pixel appears exactly once in the tiled layout.
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      EXPECT_EQ(k.tiled()[k.tiled_index(x, y)],
                k.linear()[static_cast<std::size_t>(y) * 64 + x]);
    }
  }
}

TEST(TextureTilingTest, TilesAreContiguous) {
  texture_tiling_kernel k(64, 64);
  // Pixels of one tile occupy one contiguous 32x32 region.
  const std::size_t base = k.tiled_index(32, 0);  // tile (1, 0)
  EXPECT_EQ(k.tiled_index(33, 0), base + 1);
  EXPECT_EQ(k.tiled_index(32, 1), base + 32);
}

TEST(TextureTilingTest, RejectsUnalignedDims) {
  EXPECT_THROW(texture_tiling_kernel(60, 64), std::invalid_argument);
}

TEST(TextureTilingTest, TraceMovesTwoSurfaces) {
  texture_tiling_kernel k(256, 256);
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  k.run([&](std::uint64_t, bool w) { (w ? writes : reads) += 1; });
  // 256 KiB per surface = 4096 lines each.
  EXPECT_EQ(reads, 4096u);
  EXPECT_EQ(writes, 4096u);
}

// ---------------------------------------------------------------------------
// color blitting
// ---------------------------------------------------------------------------

TEST(ColorBlittingTest, OpaqueSourceReplaces) {
  const std::uint32_t src = 0xff204060;  // alpha 255
  EXPECT_EQ(color_blitting_kernel::blend(src, 0xff997755) & 0xffffffu,
            0x204060u);
}

TEST(ColorBlittingTest, TransparentSourceKeepsDst) {
  const std::uint32_t src = 0x00204060;  // alpha 0
  EXPECT_EQ(color_blitting_kernel::blend(src, 0xff997755) & 0xffffffu,
            0x997755u);
}

TEST(ColorBlittingTest, HalfAlphaAverages) {
  const std::uint32_t out =
      color_blitting_kernel::blend(0x80FF0000u, 0xff000000u);
  const std::uint32_t red = (out >> 16) & 0xff;
  EXPECT_NEAR(red, 127, 2);
}

TEST(ColorBlittingTest, KernelAppliesBlendEverywhere) {
  color_blitting_kernel k(64, 32, 7);
  const auto src = k.src();
  const auto before = k.dst();
  k.run(null_sink());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(k.dst()[i], color_blitting_kernel::blend(src[i], before[i]));
  }
}

// ---------------------------------------------------------------------------
// quantize + pack
// ---------------------------------------------------------------------------

TEST(QuantizePackTest, RoundTripErrorBounded) {
  quantize_pack_kernel k(64, 64);
  k.run(null_sink());
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 64; ++c) {
      const float original =
          k.input()[static_cast<std::size_t>(r) * 64 + c];
      const float restored =
          static_cast<float>(k.packed()[k.packed_index(r, c)]) * k.scale();
      EXPECT_NEAR(restored, original, k.scale() * 0.51f);
    }
  }
}

TEST(QuantizePackTest, PackedBlocksAreContiguous) {
  quantize_pack_kernel k(64, 64);
  const std::size_t base = k.packed_index(0, 32);  // block (0, 1)
  EXPECT_EQ(k.packed_index(0, 33), base + 1);
  EXPECT_EQ(k.packed_index(1, 32), base + 32);
}

TEST(QuantizePackTest, RejectsUnalignedDims) {
  EXPECT_THROW(quantize_pack_kernel(50, 64), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// sub-pixel interpolation
// ---------------------------------------------------------------------------

TEST(SubpelInterpolationTest, IntegerPhaseCopies) {
  subpel_interpolation_kernel k(32, 32, 3);
  k.run(null_sink());
  // Wherever the block phase is 0 (integer MV), output == reference.
  // Find such a block by checking outputs; at least verify bounds and
  // that output pixels are valid averages of neighbours.
  const auto& ref = k.reference();
  const auto& out = k.output();
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      const int a = ref[static_cast<std::size_t>(y) * 33 + x];
      const int b = ref[static_cast<std::size_t>(y) * 33 + x + 1];
      const int c = ref[static_cast<std::size_t>(y + 1) * 33 + x];
      const int d = ref[static_cast<std::size_t>(y + 1) * 33 + x + 1];
      const int lo = std::min({a, b, c, d});
      const int hi = std::max({a, b, c, d});
      const int got = out[static_cast<std::size_t>(y) * 32 + x];
      EXPECT_GE(got, lo - 1);
      EXPECT_LE(got, hi + 1);
    }
  }
}

// ---------------------------------------------------------------------------
// SAD motion estimation
// ---------------------------------------------------------------------------

TEST(SadMotionEstimationTest, FindsPlantedVectorInInterior) {
  sad_motion_estimation_kernel k(128, 128, 4, 11);
  k.run(null_sink());
  const auto planted = k.planted();
  // Interior blocks (away from clamped borders) must find the planted
  // motion exactly (SAD == 0 there).
  const int bw = 128 / 16;
  int matches = 0;
  int interior = 0;
  for (int by = 1; by < 128 / 16 - 1; ++by) {
    for (int bx = 1; bx < bw - 1; ++bx) {
      ++interior;
      const auto mv = k.vectors()[static_cast<std::size_t>(by) * bw + bx];
      if (mv.dx == planted.dx && mv.dy == planted.dy) ++matches;
    }
  }
  EXPECT_EQ(matches, interior);
}

TEST(SadMotionEstimationTest, OneVectorPerBlock) {
  sad_motion_estimation_kernel k(64, 64, 2, 5);
  k.run(null_sink());
  EXPECT_EQ(k.vectors().size(), 16u);  // 4x4 blocks
}

// ---------------------------------------------------------------------------
// workloads + analysis
// ---------------------------------------------------------------------------

TEST(ConsumerSuiteTest, FourWorkloadsWithTargets) {
  const auto suite = consumer_suite();
  ASSERT_EQ(suite.size(), 4u);
  for (const auto& w : suite) {
    bool has_target = false;
    bool has_host = false;
    for (const auto& p : w.phases) {
      (p.offloadable ? has_target : has_host) = true;
    }
    EXPECT_TRUE(has_target) << w.name;
    EXPECT_TRUE(has_host) << w.name;
  }
}

TEST(AnalysisTest, DataMovementDominatesHostEnergy) {
  // Small configurations keep this test fast; the full-size result is
  // bench_consumer's job.
  const auto w = chrome_scrolling(1);
  const auto r =
      analyze_workload(w, cpu::mobile_soc(), cpu::pim_logic_core());
  EXPECT_GT(r.data_movement_fraction(), 0.5);
  EXPECT_LT(r.data_movement_fraction(), 0.95);
}

TEST(AnalysisTest, OffloadReducesChromeEnergyAndTime) {
  const auto w = chrome_scrolling(1);
  const auto r =
      analyze_workload(w, cpu::mobile_soc(), cpu::pim_logic_core());
  EXPECT_GT(r.core_energy_reduction(), 0.2);
  EXPECT_GT(r.core_time_reduction(), 0.2);
  EXPECT_GT(r.accel_energy_reduction(), 0.2);
  EXPECT_GT(r.accel_time_reduction(), 0.2);
}

TEST(AnalysisTest, AcceleratorBeatsCoreOnCapture) {
  const auto w = vp9_capture(1);
  const auto r =
      analyze_workload(w, cpu::mobile_soc(), cpu::pim_logic_core());
  EXPECT_GT(r.accel_energy_reduction(), r.core_energy_reduction());
  EXPECT_GT(r.accel_time_reduction(), r.core_time_reduction());
}

TEST(AreaTest, MatchesPaperFractions) {
  const area_report a = logic_layer_area();
  EXPECT_NEAR(a.core_fraction, 0.094, 0.01);
  EXPECT_NEAR(a.accel_fraction, 0.354, 0.01);
  EXPECT_LT(a.pim_core_mm2, a.budget_mm2);
  EXPECT_LT(a.pim_accel_mm2, a.budget_mm2);
}

}  // namespace
}  // namespace pim::consumer
