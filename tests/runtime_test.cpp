// Tests for the asynchronous batched PIM runtime: task futures and
// reports, hazard-ordered scheduling, equivalence of batched and
// synchronous execution, offload-aware dispatch, and the multi-tenant
// workload driver.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pim_system.h"
#include "runtime/workload.h"

namespace pim::runtime {
namespace {

core::pim_system_config small_config() {
  core::pim_system_config cfg;
  cfg.org.channels = 1;
  cfg.org.ranks = 1;
  cfg.org.banks = 4;
  cfg.org.subarrays = 4;
  cfg.org.rows = 256;
  cfg.org.columns = 8;
  return cfg;
}

// ---------------------------------------------------------------------------
// Futures and reports
// ---------------------------------------------------------------------------

TEST(TaskFutureTest, EmptyFutureThrows) {
  task_future f;
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f.ready());
  EXPECT_THROW(f.report(), std::logic_error);
}

TEST(TaskFutureTest, ReportBeforeCompletionThrows) {
  core::pim_system sys(small_config());
  auto vecs = sys.allocate(1'000, 3);
  task_future f =
      sys.submit_bulk(dram::bulk_op::and_op, vecs[0], &vecs[1], vecs[2]);
  ASSERT_TRUE(f.valid());
  EXPECT_FALSE(f.ready());
  EXPECT_THROW(f.report(), std::logic_error);
  sys.wait(f);
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.report().where, backend_kind::ambit);
}

TEST(TaskReportTest, ThroughputGuardsZeroLatency) {
  task_report r;
  r.output_bytes = 4096;
  r.submit_ps = 1000;
  r.complete_ps = 1000;  // zero-latency completion
  EXPECT_EQ(r.latency(), 0);
  EXPECT_EQ(r.throughput_gbps(), 0.0);

  r.complete_ps = 2000;
  EXPECT_GT(r.throughput_gbps(), 0.0);
}

TEST(TaskReportTest, TimestampsAreOrdered) {
  core::pim_system sys(small_config());
  auto vecs = sys.allocate(1'000, 3);
  task_future f =
      sys.submit_bulk(dram::bulk_op::or_op, vecs[0], &vecs[1], vecs[2]);
  sys.wait(f);
  const task_report& r = f.report();
  EXPECT_LE(r.submit_ps, r.start_ps);
  EXPECT_LT(r.start_ps, r.complete_ps);
  EXPECT_GT(r.throughput_gbps(), 0.0);
}

// ---------------------------------------------------------------------------
// Batched execution: correctness and hazard ordering
// ---------------------------------------------------------------------------

TEST(SchedulerTest, BatchedMatchesSynchronousBitForBit) {
  const bits size = 5'000;
  rng gen(42);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  const bitvector c = bitvector::random(size, gen);

  // Synchronous reference.
  core::pim_system sync_sys(small_config());
  auto sv = sync_sys.allocate(size, 5);
  sync_sys.write(sv[0], a);
  sync_sys.write(sv[1], b);
  sync_sys.write(sv[2], c);
  sync_sys.execute(dram::bulk_op::and_op, sv[0], &sv[1], sv[3]);
  sync_sys.execute(dram::bulk_op::xor_op, sv[3], &sv[2], sv[4]);
  sync_sys.execute(dram::bulk_op::nor_op, sv[4], &sv[0], sv[3]);

  // Same chain, submitted all at once.
  core::pim_system batched_sys(small_config());
  auto bv = batched_sys.allocate(size, 5);
  batched_sys.write(bv[0], a);
  batched_sys.write(bv[1], b);
  batched_sys.write(bv[2], c);
  batched_sys.submit_bulk(dram::bulk_op::and_op, bv[0], &bv[1], bv[3]);
  batched_sys.submit_bulk(dram::bulk_op::xor_op, bv[3], &bv[2], bv[4]);
  batched_sys.submit_bulk(dram::bulk_op::nor_op, bv[4], &bv[0], bv[3]);
  batched_sys.wait_all();

  EXPECT_EQ(batched_sys.read(bv[3]), sync_sys.read(sv[3]));
  EXPECT_EQ(batched_sys.read(bv[4]), sync_sys.read(sv[4]));
  // And against the functional model directly.
  EXPECT_EQ(batched_sys.read(bv[4]), (a & b) ^ c);
}

TEST(SchedulerTest, DependentTasksCompleteInOrder) {
  core::pim_system sys(small_config());
  const bits size = 2'000;
  auto vecs = sys.allocate(size, 4);
  rng gen(3);
  sys.write(vecs[0], bitvector::random(size, gen));
  sys.write(vecs[1], bitvector::random(size, gen));

  // t1 writes d; t2 reads d (RAW); t3 overwrites d's source (WAR).
  task_future t1 =
      sys.submit_bulk(dram::bulk_op::and_op, vecs[0], &vecs[1], vecs[2]);
  task_future t2 =
      sys.submit_bulk(dram::bulk_op::or_op, vecs[2], &vecs[1], vecs[3]);
  task_future t3 =
      sys.submit_bulk(dram::bulk_op::not_op, vecs[1], nullptr, vecs[2]);
  sys.wait_all();

  EXPECT_LE(t1.report().complete_ps, t2.report().start_ps);
  EXPECT_LE(t2.report().complete_ps, t3.report().start_ps);
  EXPECT_GE(sys.runtime().stats().sched.hazard_deferred, 2u);
}

TEST(SchedulerTest, HazardChainProducesCorrectResults) {
  core::pim_system sys(small_config());
  const bits size = 3'000;
  auto vecs = sys.allocate(size, 4);
  rng gen(9);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  sys.write(vecs[0], a);
  sys.write(vecs[1], b);

  sys.submit_bulk(dram::bulk_op::and_op, vecs[0], &vecs[1], vecs[2]);
  sys.submit_bulk(dram::bulk_op::or_op, vecs[2], &vecs[0], vecs[3]);
  // WAR: overwrite vecs[2] after the read above.
  sys.submit_bulk(dram::bulk_op::xor_op, vecs[0], &vecs[1], vecs[2]);
  // In-place: vecs[3] |= vecs[2].
  sys.submit_bulk(dram::bulk_op::or_op, vecs[3], &vecs[2], vecs[3]);
  sys.wait_all();

  EXPECT_EQ(sys.read(vecs[2]), a ^ b);
  EXPECT_EQ(sys.read(vecs[3]), ((a & b) | a) | (a ^ b));
}

TEST(SchedulerTest, IndependentOpsOverlapAcrossBanks) {
  // Eight independent ops on different banks: batched wall-clock must
  // beat drain-per-op, and the bank-parallelism stats must see it.
  const int ops = 8;
  core::pim_system_config cfg = small_config();
  cfg.org.banks = 8;

  core::pim_system sync_sys(cfg);
  const bits size = cfg.org.row_bits();
  picoseconds sync_ps = 0;
  for (int i = 0; i < ops; ++i) {
    auto g = sync_sys.allocate(size, 3);
    sync_ps += sync_sys.execute(dram::bulk_op::xor_op, g[0], &g[1], g[2])
                   .latency;
  }

  core::pim_system batched_sys(cfg);
  std::vector<std::vector<dram::bulk_vector>> groups;
  for (int i = 0; i < ops; ++i) groups.push_back(batched_sys.allocate(size, 3));
  const picoseconds start = batched_sys.memory().now_ps();
  for (const auto& g : groups) {
    batched_sys.submit_bulk(dram::bulk_op::xor_op, g[0], &g[1], g[2]);
  }
  batched_sys.wait_all();
  const picoseconds batched_ps = batched_sys.memory().now_ps() - start;

  EXPECT_LT(batched_ps, sync_ps / 2);  // at least 2x from overlap
  EXPECT_GT(batched_sys.runtime().stats().sched.peak_busy_banks, 1);
}

TEST(SchedulerTest, RowCloneAndMemsetTasks) {
  core::pim_system sys(small_config());
  const bits size = sys.org().row_bits();
  auto vecs = sys.allocate(size, 2);
  rng gen(5);
  const bitvector data = bitvector::random(size, gen);
  sys.write(vecs[0], data);

  pim_task copy;
  copy.payload = row_copy_args{vecs[0].rows[0], vecs[1].rows[0], true};
  task_future f1 = sys.submit(std::move(copy));

  pim_task set;
  set.payload = row_memset_args{vecs[0].rows[0], true};
  task_future f2 = sys.submit(std::move(set));  // WAR on the copy source
  sys.wait_all();

  EXPECT_EQ(sys.read(vecs[1]), data);
  EXPECT_TRUE(sys.read(vecs[0]).all());
  EXPECT_EQ(f1.report().where, backend_kind::rowclone);
  EXPECT_LE(f1.report().complete_ps, f2.report().start_ps);
}

TEST(SchedulerTest, WaitOnEmptyFutureThrows) {
  core::pim_system sys(small_config());
  task_future empty;
  EXPECT_THROW(sys.wait(empty), std::invalid_argument);
}

TEST(SchedulerTest, InvalidTaskRejectedWithoutCorruptingState) {
  core::pim_system sys(small_config());
  const bits size = 1'000;
  auto vecs = sys.allocate(size, 3);

  // A row_copy task forced onto the Ambit backend is rejected at
  // submit time...
  pim_task bad;
  bad.payload = row_copy_args{vecs[0].rows[0], vecs[1].rows[0], true};
  bad.forced_backend = backend_kind::ambit;
  EXPECT_THROW(sys.submit(std::move(bad)), std::invalid_argument);
  // ...as is an FPM copy whose rows live in different banks...
  dram::address other = vecs[0].rows[0];
  other.bank = (other.bank + 1) % sys.org().banks;
  pim_task cross;
  cross.payload = row_copy_args{vecs[0].rows[0], other, true};
  EXPECT_THROW(sys.submit(std::move(cross)), std::invalid_argument);

  // ...as is an empty bulk vector, whose zero command sequences would
  // otherwise never resolve the future...
  dram::bulk_vector empty;
  pim_task hollow;
  hollow.payload = bulk_bool_args{dram::bulk_op::not_op, empty, {}, empty};
  EXPECT_THROW(sys.submit(std::move(hollow)), std::invalid_argument);

  // ...and none of them leaves state behind: the rejected tasks' rows are
  // not registered as hazards, so later tasks run normally.
  EXPECT_EQ(sys.runtime().stats().sched.submitted, 0u);
  rng gen(21);
  const bitvector a = bitvector::random(size, gen);
  sys.write(vecs[0], a);
  task_future ok =
      sys.submit_bulk(dram::bulk_op::not_op, vecs[0], nullptr, vecs[2]);
  sys.wait(ok);
  EXPECT_EQ(sys.read(vecs[2]), ~a);
  EXPECT_TRUE(sys.runtime().idle());
}

// ---------------------------------------------------------------------------
// Stream weights (fair share)
// ---------------------------------------------------------------------------

// Submits `count` host kernels on `stream`; they all queue on the
// single-slot host pool, so pop order is directly observable through
// completion times.
std::vector<task_future> submit_host_kernels(core::pim_system& sys,
                                             int stream, int count) {
  std::vector<task_future> futures;
  for (int i = 0; i < count; ++i) {
    core::kernel_profile p;
    p.name = "stress";
    p.instructions = 1'000'000;
    p.memory_traffic = 1 * mib;
    p.host_cache_hit = 0.5;
    pim_task t;
    t.payload = host_kernel_args{p};
    t.stream = stream;
    t.forced_backend = backend_kind::host;
    futures.push_back(sys.submit(std::move(t)));
  }
  return futures;
}

TEST(StreamWeightTest, DefaultRemainsFifo) {
  core::pim_system sys(small_config());
  // Stream 0 queues its whole batch first; without weights the pops
  // are strictly FIFO, so all of stream 0 completes before any of
  // stream 1.
  auto first = submit_host_kernels(sys, 0, 6);
  auto second = submit_host_kernels(sys, 1, 6);
  sys.wait_all();
  EXPECT_LE(first.back().report().complete_ps,
            second.front().report().complete_ps);
}

TEST(StreamWeightTest, WeightedStreamsInterleaveInsteadOfStarving) {
  core::pim_system sys(small_config());
  sys.runtime().set_stream_weight(0, 1.0);
  sys.runtime().set_stream_weight(1, 1.0);
  // Same submission order as the FIFO test: stream 0's backlog first.
  auto first = submit_host_kernels(sys, 0, 6);
  auto second = submit_host_kernels(sys, 1, 6);
  sys.wait_all();
  // Equal weights alternate pops, so stream 1's first task completes
  // well before stream 0's backlog drains — no starvation behind the
  // earlier-arriving queue.
  EXPECT_LT(second.front().report().complete_ps,
            first.back().report().complete_ps);
  // And proportionality: stream 1 finishes its 6 within the window in
  // which stream 0 also finishes about 6 (not all 6 after stream 0's
  // entire backlog, as FIFO would).
  const picoseconds second_last = second.back().report().complete_ps;
  int first_done_before = 0;
  for (const task_future& f : first) {
    if (f.report().complete_ps <= second_last) ++first_done_before;
  }
  EXPECT_LE(first_done_before, 6);
}

TEST(StreamWeightTest, HeavierWeightGetsProportionallyMoreService) {
  core::pim_system sys(small_config());
  sys.runtime().set_stream_weight(0, 1.0);
  sys.runtime().set_stream_weight(1, 4.0);
  auto light = submit_host_kernels(sys, 0, 8);
  auto heavy = submit_host_kernels(sys, 1, 8);
  sys.wait_all();
  // Weight 4 vs 1: the heavy stream drains roughly 4x as fast, so its
  // last completion precedes the light stream's.
  EXPECT_LT(heavy.back().report().complete_ps,
            light.back().report().complete_ps);
  // Starvation avoidance: the light stream still progresses while the
  // heavy backlog exists (its first task is not deferred to the end).
  EXPECT_LT(light.front().report().complete_ps,
            heavy.back().report().complete_ps);
}

TEST(StreamWeightTest, LateJoinerEntersAtServicePositionNotZero) {
  core::pim_system sys(small_config());
  sys.runtime().set_stream_weight(0, 1.0);
  // Stream 0 runs a warm-up batch, advancing its stride pass well past
  // zero.
  submit_host_kernels(sys, 0, 6);
  sys.wait_all();
  // Both streams now queue a batch; stream 1 was never weighted. If a
  // late joiner entered at pass 0 it would monopolize the pool until it
  // "caught up" with stream 0's history; the re-entry floor makes them
  // alternate instead.
  auto first = submit_host_kernels(sys, 0, 6);
  auto second = submit_host_kernels(sys, 1, 6);
  sys.wait_all();
  EXPECT_LT(first[1].report().complete_ps,
            second.back().report().complete_ps);
}

TEST(StreamWeightTest, RejectsNonPositiveWeight) {
  core::pim_system sys(small_config());
  EXPECT_THROW(sys.runtime().set_stream_weight(0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(sys.runtime().set_stream_weight(0, -1.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dispatcher routing
// ---------------------------------------------------------------------------

TEST(DispatcherTest, MemoryBoundKernelOffloads) {
  dispatcher d(small_config().org);
  pim_task t;
  core::kernel_profile p;
  p.name = "streaming_scan";
  p.instructions = 1'000'000;
  p.memory_traffic = 64 * mib;  // memory-bound: host BW is the wall
  p.host_cache_hit = 0.0;
  t.payload = host_kernel_args{p};

  const dispatcher::routing_result r = d.route(t);
  EXPECT_TRUE(r.decision.offload);
  EXPECT_EQ(r.where, backend_kind::ndp_logic);
}

TEST(DispatcherTest, ComputeBoundKernelStaysOnHost) {
  dispatcher d(small_config().org);
  pim_task t;
  core::kernel_profile p;
  p.name = "crypto";
  p.instructions = 500'000'000;  // compute-bound, cache-resident
  p.memory_traffic = 64 * kib;
  p.host_cache_hit = 0.9;
  t.payload = host_kernel_args{p};

  const dispatcher::routing_result r = d.route(t);
  EXPECT_FALSE(r.decision.offload);
  EXPECT_EQ(r.where, backend_kind::host);
}

TEST(DispatcherTest, BulkOpsAreMemoryBoundAndRouteToAmbit) {
  dispatcher d(small_config().org);
  core::pim_system sys(small_config());
  auto vecs = sys.allocate(100'000, 3);
  pim_task t;
  bulk_bool_args args;
  args.op = dram::bulk_op::xor_op;
  args.a = vecs[0];
  args.b = vecs[1];
  args.d = vecs[2];
  t.payload = std::move(args);

  const dispatcher::routing_result r = d.route(t);
  EXPECT_TRUE(r.decision.offload);
  EXPECT_EQ(r.where, backend_kind::ambit);
  // The derived profile models the host loop: 3 bytes of traffic per
  // output byte for a binary op, streaming (no cache reuse).
  EXPECT_EQ(r.profile.memory_traffic, 3u * (100'000 / 8));
  EXPECT_EQ(r.profile.host_cache_hit, 0.0);
}

TEST(DispatcherTest, PolicyModesOverrideDecision) {
  pim_task t;
  core::kernel_profile p;
  p.instructions = 500'000'000;
  p.memory_traffic = 64 * kib;
  p.host_cache_hit = 0.9;  // would stay on host under adaptive
  t.payload = host_kernel_args{p};

  dispatch_policy force_pim;
  force_pim.routing = dispatch_policy::mode::force_pim;
  EXPECT_EQ(dispatcher(small_config().org, force_pim).route(t).where,
            backend_kind::ndp_logic);

  dispatch_policy force_host;
  force_host.routing = dispatch_policy::mode::force_host;
  t.payload = host_kernel_args{p};
  EXPECT_EQ(dispatcher(small_config().org, force_host).route(t).where,
            backend_kind::host);

  // A per-task forced backend beats every policy.
  t.forced_backend = backend_kind::ndp_logic;
  EXPECT_EQ(dispatcher(small_config().org, force_host).route(t).where,
            backend_kind::ndp_logic);
}

TEST(DispatcherTest, UtilizationAccountsCompletedTasks) {
  core::pim_system sys(small_config());
  auto vecs = sys.allocate(1'000, 3);
  sys.submit_bulk(dram::bulk_op::and_op, vecs[0], &vecs[1], vecs[2]);
  core::kernel_profile p;
  p.name = "scan";
  p.instructions = 1'000;
  p.memory_traffic = 1 * mib;
  sys.runtime().submit_kernel(p);
  sys.wait_all();

  const auto util = sys.runtime().stats().backends;
  ASSERT_TRUE(util.count(backend_kind::ambit));
  EXPECT_EQ(util.at(backend_kind::ambit).tasks, 1u);
  EXPECT_EQ(util.at(backend_kind::ambit).output_bytes, 1'000u / 8);
  ASSERT_TRUE(util.count(backend_kind::ndp_logic));
  EXPECT_EQ(util.at(backend_kind::ndp_logic).tasks, 1u);
}

TEST(DispatcherTest, HostFallbackComputesCorrectResult) {
  core::pim_system sys(small_config());
  const bits size = 2'000;
  auto vecs = sys.allocate(size, 3);
  rng gen(11);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  sys.write(vecs[0], a);
  sys.write(vecs[1], b);

  pim_task t;
  bulk_bool_args args;
  args.op = dram::bulk_op::nand_op;
  args.a = vecs[0];
  args.b = vecs[1];
  args.d = vecs[2];
  t.payload = std::move(args);
  t.forced_backend = backend_kind::host;  // bypass Ambit entirely
  task_future f = sys.submit(std::move(t));
  sys.wait(f);

  EXPECT_EQ(sys.read(vecs[2]), ~(a & b));
  EXPECT_EQ(f.report().where, backend_kind::host);
}

// ---------------------------------------------------------------------------
// Multi-tenant workload driver
// ---------------------------------------------------------------------------

std::vector<stream_config> test_streams(int tasks) {
  std::vector<stream_config> streams(3);
  streams[0].kind = stream_kind::db_bitmap_scan;
  streams[1].kind = stream_kind::graph_frontier;
  streams[2].kind = stream_kind::consumer_bulk;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    streams[i].tasks = tasks;
    streams[i].seed = 50 + i;
  }
  return streams;
}

TEST(WorkloadDriverTest, BatchedMatchesSynchronousDigest) {
  core::pim_system sync_sys(small_config());
  workload_driver sync_driver(sync_sys);
  const drive_result sync_r = sync_driver.run(test_streams(8), true);

  core::pim_system batched_sys(small_config());
  workload_driver batched_driver(batched_sys);
  const drive_result batched_r = batched_driver.run(test_streams(8), false);

  EXPECT_EQ(sync_r.digest, batched_r.digest);
  EXPECT_EQ(sync_r.output_bytes, batched_r.output_bytes);
  EXPECT_LE(batched_r.makespan_ps, sync_r.makespan_ps);
}

TEST(WorkloadDriverTest, AllTasksCompletePerStream) {
  core::pim_system sys(small_config());
  workload_driver driver(sys);
  const drive_result r = driver.run(test_streams(12), false);

  ASSERT_EQ(r.streams.size(), 3u);
  for (const stream_result& s : r.streams) {
    EXPECT_EQ(s.tasks, 12);
    EXPECT_GT(s.last_complete_ps, s.first_submit_ps);
    EXPECT_GT(s.output_bytes, 0u);
  }
  EXPECT_EQ(r.stats.sched.submitted, 36u);
  EXPECT_EQ(r.stats.sched.completed, 36u);
  EXPECT_TRUE(sys.runtime().idle());
}

TEST(WorkloadDriverTest, StressManyConcurrentStreams) {
  core::pim_system_config cfg = small_config();
  cfg.org.banks = 8;
  cfg.org.rows = 512;
  core::pim_system sys(cfg);
  workload_driver driver(sys);

  std::vector<stream_config> streams;
  for (int i = 0; i < 12; ++i) {
    stream_config s;
    s.kind = static_cast<stream_kind>(i % 3);
    s.tasks = 20;
    s.seed = static_cast<std::uint64_t>(i + 1);
    streams.push_back(s);
  }
  const drive_result r = driver.run(streams, false);

  EXPECT_EQ(r.stats.sched.submitted, 240u);
  EXPECT_EQ(r.stats.sched.completed, 240u);
  EXPECT_GT(r.stats.sched.peak_busy_banks, 1);
  EXPECT_TRUE(sys.runtime().idle());
  // Re-running on the same system must also drain cleanly.
  const drive_result r2 = driver.run(test_streams(4), false);
  EXPECT_EQ(r2.stats.sched.completed, 252u);  // cumulative counters
}

}  // namespace
}  // namespace pim::runtime
