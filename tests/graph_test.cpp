// Unit tests for the graph substrate and the five Tesseract workloads.
#include <gtest/gtest.h>

#include <queue>

#include "graph/graph.h"
#include "graph/workloads.h"

namespace pim::graph {
namespace {

csr_graph tiny_graph() {
  // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 -> 2 (vertex 4 isolated).
  return csr_graph::from_edges(5, {{0, 1}, {0, 2}, {1, 2}, {2, 0}, {3, 2}});
}

// ---------------------------------------------------------------------------
// CSR + generators
// ---------------------------------------------------------------------------

TEST(CsrGraphTest, BuildsOffsetsAndNeighbors) {
  const csr_graph g = tiny_graph();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_EQ(g.neighbor(g.edges_begin(2)), 0u);
}

TEST(CsrGraphTest, RejectsOutOfRangeVertex) {
  EXPECT_THROW(csr_graph::from_edges(2, {{0, 5}}), std::invalid_argument);
}

TEST(CsrGraphTest, WeightsAreInRange) {
  rng gen(1);
  const csr_graph g = rmat(8, 4, gen, true);
  for (std::uint64_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(g.weight(e), 1);
  }
  EXPECT_TRUE(g.weighted());
}

TEST(RmatTest, ProducesRequestedSize) {
  rng gen(2);
  const csr_graph g = rmat(10, 8, gen);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 8192u);
  EXPECT_NEAR(g.avg_degree(), 8.0, 0.01);
}

TEST(RmatTest, IsSkewedComparedToUniform) {
  rng gen(3);
  const csr_graph skewed = rmat(12, 8, gen);
  const csr_graph uniform = uniform_random(4096, 32768, gen);
  auto max_degree = [](const csr_graph& g) {
    std::uint64_t best = 0;
    for (vertex_id v = 0; v < g.num_vertices(); ++v) {
      best = std::max(best, g.degree(v));
    }
    return best;
  };
  EXPECT_GT(max_degree(skewed), 3 * max_degree(uniform));
}

TEST(RmatTest, RejectsBadParameters) {
  rng gen(4);
  EXPECT_THROW(rmat(0, 8, gen), std::invalid_argument);
  EXPECT_THROW(rmat(8, 8, gen, false, 0.5, 0.3, 0.3), std::invalid_argument);
}

TEST(PartitionTest, RangeAndHashCoverAllParts) {
  for (auto policy : {partition::policy::range, partition::policy::hash}) {
    partition p(10000, 64, policy);
    std::vector<int> counts(64, 0);
    for (vertex_id v = 0; v < 10000; ++v) {
      const int part = p.part_of(v);
      ASSERT_GE(part, 0);
      ASSERT_LT(part, 64);
      ++counts[static_cast<std::size_t>(part)];
    }
    for (int c : counts) EXPECT_GT(c, 0);
  }
}

TEST(PartitionTest, HashSpreadsBetterThanRangeForHubs) {
  // Low ids are R-MAT hubs; range puts them all in part 0.
  partition range(1024, 16, partition::policy::range);
  partition hash(1024, 16, partition::policy::hash);
  std::set<int> range_parts;
  std::set<int> hash_parts;
  for (vertex_id v = 0; v < 16; ++v) {
    range_parts.insert(range.part_of(v));
    hash_parts.insert(hash.part_of(v));
  }
  EXPECT_EQ(range_parts.size(), 1u);
  EXPECT_GT(hash_parts.size(), 4u);
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

TEST(PagerankTest, RanksSumToOne) {
  rng gen(5);
  const csr_graph g = rmat(10, 8, gen);
  pagerank pr(10);
  pr.reset(g);
  bool done = false;
  while (!done) done = pr.iterate(g, [](vertex_id, vertex_id) {});
  double sum = 0.0;
  for (double r : pr.ranks()) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PagerankTest, HubReceivesHigherRank) {
  // Star graph: everyone points at vertex 0.
  std::vector<std::pair<vertex_id, vertex_id>> edges;
  for (vertex_id v = 1; v < 50; ++v) edges.emplace_back(v, 0);
  const csr_graph g = csr_graph::from_edges(50, std::move(edges));
  pagerank pr(20);
  pr.reset(g);
  bool done = false;
  while (!done) done = pr.iterate(g, [](vertex_id, vertex_id) {});
  for (vertex_id v = 1; v < 50; ++v) {
    EXPECT_GT(pr.ranks()[0], 10.0 * pr.ranks()[v]);
  }
}

TEST(PagerankTest, ReportsOneUpdatePerEdgePerIteration) {
  const csr_graph g = tiny_graph();
  pagerank pr(3);
  pr.reset(g);
  std::uint64_t updates = 0;
  bool done = false;
  while (!done) {
    done = pr.iterate(g, [&](vertex_id, vertex_id) { ++updates; });
  }
  EXPECT_EQ(updates, 3 * g.num_edges());
}

// ---------------------------------------------------------------------------
// Average Teenage Follower
// ---------------------------------------------------------------------------

TEST(TeenageFollowerTest, MatchesBruteForce) {
  rng gen(6);
  const csr_graph g = rmat(9, 6, gen);
  average_teenage_follower at;
  at.reset(g);
  at.iterate(g, [](vertex_id, vertex_id) {});
  std::vector<std::uint32_t> expected(g.num_vertices(), 0);
  for (vertex_id u = 0; u < g.num_vertices(); ++u) {
    if (!at.is_teen(u)) continue;
    for (std::uint64_t e = g.edges_begin(u); e < g.edges_end(u); ++e) {
      ++expected[g.neighbor(e)];
    }
  }
  EXPECT_EQ(at.follower_counts(), expected);
  EXPECT_GT(at.average_followers(), 0.0);
}

TEST(TeenageFollowerTest, SinglePass) {
  const csr_graph g = tiny_graph();
  average_teenage_follower at;
  at.reset(g);
  EXPECT_TRUE(at.iterate(g, [](vertex_id, vertex_id) {}));
  EXPECT_TRUE(at.iterate(g, [](vertex_id, vertex_id) {}));  // stays done
}

// ---------------------------------------------------------------------------
// Conductance
// ---------------------------------------------------------------------------

TEST(ConductanceTest, MatchesBruteForce) {
  rng gen(7);
  const csr_graph g = rmat(9, 6, gen);
  conductance ct;
  ct.reset(g);
  ct.iterate(g, [](vertex_id, vertex_id) {});
  std::uint64_t cut = 0;
  std::uint64_t vol_in = 0;
  std::uint64_t vol_out = 0;
  for (vertex_id u = 0; u < g.num_vertices(); ++u) {
    for (std::uint64_t e = g.edges_begin(u); e < g.edges_end(u); ++e) {
      if (ct.in_set(u) != ct.in_set(g.neighbor(e))) ++cut;
    }
    (ct.in_set(u) ? vol_in : vol_out) += g.degree(u);
  }
  const double expected =
      static_cast<double>(cut) /
      static_cast<double>(std::min(vol_in, vol_out));
  EXPECT_DOUBLE_EQ(ct.value(), expected);
  EXPECT_GE(ct.value(), 0.0);
}

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> dijkstra(const csr_graph& g, vertex_id src) {
  std::vector<std::uint32_t> dist(g.num_vertices(), sssp::unreachable);
  using entry = std::pair<std::uint32_t, vertex_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> queue;
  dist[src] = 0;
  queue.emplace(0, src);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (std::uint64_t e = g.edges_begin(u); e < g.edges_end(u); ++e) {
      const vertex_id v = g.neighbor(e);
      const std::uint32_t nd = d + g.weight(e);
      if (nd < dist[v]) {
        dist[v] = nd;
        queue.emplace(nd, v);
      }
    }
  }
  return dist;
}

TEST(SsspTest, MatchesDijkstra) {
  rng gen(8);
  const csr_graph g = rmat(9, 6, gen, /*weighted=*/true);
  sssp sp(0);
  sp.reset(g);
  bool done = false;
  int iterations = 0;
  while (!done) {
    done = sp.iterate(g, [](vertex_id, vertex_id) {});
    ++iterations;
  }
  EXPECT_GT(iterations, 1);
  EXPECT_EQ(sp.distances(), dijkstra(g, 0));
}

TEST(SsspTest, UnreachableStaysInfinite) {
  const csr_graph g = tiny_graph();
  sssp sp(0);
  sp.reset(g);
  while (!sp.iterate(g, [](vertex_id, vertex_id) {})) {
  }
  EXPECT_EQ(sp.distances()[3], sssp::unreachable);  // nothing reaches 3
  EXPECT_EQ(sp.distances()[4], sssp::unreachable);
  EXPECT_EQ(sp.distances()[0], 0u);
}

// ---------------------------------------------------------------------------
// Vertex Cover
// ---------------------------------------------------------------------------

TEST(VertexCoverTest, CoversEveryEdge) {
  rng gen(9);
  const csr_graph g = rmat(9, 6, gen);
  vertex_cover vc;
  vc.reset(g);
  while (!vc.iterate(g, [](vertex_id, vertex_id) {})) {
  }
  for (vertex_id u = 0; u < g.num_vertices(); ++u) {
    for (std::uint64_t e = g.edges_begin(u); e < g.edges_end(u); ++e) {
      const vertex_id v = g.neighbor(e);
      if (u == v) continue;  // self-loops need no cover
      EXPECT_TRUE(vc.in_cover()[u] || vc.in_cover()[v]);
    }
  }
  EXPECT_GT(vc.cover_size(), 0u);
  EXPECT_LT(vc.cover_size(), g.num_vertices());
}

TEST(TesseractSuiteTest, HasFiveWorkloadsInPaperOrder) {
  const auto suite = tesseract_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0]->name(), "AT.teenage-follower");
  EXPECT_EQ(suite[1]->name(), "CT.conductance");
  EXPECT_EQ(suite[2]->name(), "PR.pagerank");
  EXPECT_EQ(suite[3]->name(), "SP.sssp");
  EXPECT_EQ(suite[4]->name(), "VC.vertex-cover");
}

}  // namespace
}  // namespace pim::graph
