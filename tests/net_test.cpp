// Tests for the wire protocol and the socket server/client pair.
//
// Framing is tested on plain byte buffers (no socket): round trips
// across every message type, then every malformed-input class — bad
// magic, oversized length, truncated body, unknown opcode, trailing
// bytes. The server tests drive real loopback sockets: garbage input
// must produce one error frame and a closed connection (never a
// crash, and never take down other connections), and a synthetic
// fleet over remote_client must reproduce the in-process digests bit
// for bit with pipelined, out-of-order responses.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "service/synthetic.h"

namespace pim::net {
namespace {

// ---------------------------------------------------------------------------
// Framing round trips
// ---------------------------------------------------------------------------

dram::bulk_vector sample_vector(int base) {
  dram::bulk_vector v;
  v.size = 8192 * 2;
  for (int i = 0; i < 2; ++i) {
    dram::address a;
    a.channel = base % 2;
    a.rank = 0;
    a.bank = (base + i) % 8;
    a.row = 100 + base + i;
    v.rows.push_back(a);
  }
  return v;
}

bitvector sample_bits(std::size_t size, std::uint64_t seed) {
  rng gen(seed);
  return bitvector::random(size, gen);
}

net_frame roundtrip(std::uint64_t id, const net_message& msg) {
  const std::vector<std::uint8_t> wire = encode_frame(id, msg);
  frame_splitter splitter;
  splitter.feed(wire.data(), wire.size());
  std::optional<net_frame> frame = splitter.next();
  EXPECT_TRUE(frame.has_value());
  EXPECT_EQ(splitter.buffered(), 0u);
  EXPECT_EQ(frame->id, id);
  EXPECT_EQ(frame->msg.index(), msg.index());
  return std::move(*frame);
}

TEST(protocol, round_trips_every_request_type) {
  {
    const auto f = roundtrip(1, open_session_req{2.5});
    EXPECT_DOUBLE_EQ(std::get<open_session_req>(f.msg).weight, 2.5);
  }
  {
    const auto f = roundtrip(2, close_session_req{77});
    EXPECT_EQ(std::get<close_session_req>(f.msg).session, 77u);
  }
  {
    const auto f = roundtrip(3, allocate_req{9, 8192, 3});
    const auto& m = std::get<allocate_req>(f.msg);
    EXPECT_EQ(m.session, 9u);
    EXPECT_EQ(m.size, 8192u);
    EXPECT_EQ(m.count, 3);
  }
  {
    write_req req;
    req.session = 4;
    req.v = sample_vector(1);
    req.data = sample_bits(req.v.size, 99);
    const auto f = roundtrip(4, req);
    const auto& m = std::get<write_req>(f.msg);
    EXPECT_EQ(m.v.rows, req.v.rows);
    EXPECT_EQ(m.v.size, req.v.size);
    EXPECT_EQ(m.data, req.data);
  }
  {
    read_req req;
    req.session = 5;
    req.v = sample_vector(2);
    const auto f = roundtrip(5, req);
    EXPECT_EQ(std::get<read_req>(f.msg).v.rows, req.v.rows);
  }
  {
    submit_req req;
    req.session = 6;
    req.op = dram::bulk_op::xor_op;
    req.a = sample_vector(1);
    req.b = sample_vector(2);
    req.d = sample_vector(3);
    const auto f = roundtrip(6, req);
    const auto& m = std::get<submit_req>(f.msg);
    EXPECT_EQ(m.op, dram::bulk_op::xor_op);
    ASSERT_TRUE(m.b.has_value());
    EXPECT_EQ(m.b->rows, req.b->rows);
  }
  {
    submit_req unary;
    unary.session = 6;
    unary.op = dram::bulk_op::not_op;
    unary.a = sample_vector(1);
    unary.d = sample_vector(3);
    const auto f = roundtrip(7, unary);
    EXPECT_FALSE(std::get<submit_req>(f.msg).b.has_value());
  }
  {
    submit_shared_req req;
    req.issuer = 8;
    req.op = dram::bulk_op::and_op;
    req.a = {11, sample_vector(1)};
    req.b = service::shared_vector{12, sample_vector(2)};
    req.d = {11, sample_vector(3)};
    const auto f = roundtrip(8, req);
    const auto& m = std::get<submit_shared_req>(f.msg);
    EXPECT_EQ(m.a.owner, 11u);
    ASSERT_TRUE(m.b.has_value());
    EXPECT_EQ(m.b->owner, 12u);
    EXPECT_EQ(m.d.v.rows, req.d.v.rows);
  }
  roundtrip(9, wait_req{});
  roundtrip(10, stats_req{});
  {
    const auto f = roundtrip(11, hello_req{7});
    EXPECT_EQ(std::get<hello_req>(f.msg).max_version, 7);
  }
}

TEST(protocol, round_trips_every_response_type) {
  {
    const auto f = roundtrip(20, opened_resp{1234, 3});
    const auto& m = std::get<opened_resp>(f.msg);
    EXPECT_EQ(m.session, 1234u);
    EXPECT_EQ(m.shard, 3);
  }
  roundtrip(21, closed_resp{});
  {
    vectors_resp resp;
    resp.vectors = {sample_vector(1), sample_vector(4)};
    const auto f = roundtrip(22, resp);
    const auto& m = std::get<vectors_resp>(f.msg);
    ASSERT_EQ(m.vectors.size(), 2u);
    EXPECT_EQ(m.vectors[1].rows, resp.vectors[1].rows);
  }
  {
    data_resp resp;
    resp.data = sample_bits(1000, 7);
    const auto f = roundtrip(23, resp);
    EXPECT_EQ(std::get<data_resp>(f.msg).data, resp.data);
  }
  {
    done_resp resp;
    resp.report.id = 55;
    resp.report.stream = 2;
    resp.report.kind = runtime::task_kind::bulk_bool;
    resp.report.where = runtime::backend_kind::ambit;
    resp.report.submit_ps = 10;
    resp.report.start_ps = 20;
    resp.report.complete_ps = 300;
    resp.report.output_bytes = 4096;
    const auto f = roundtrip(24, resp);
    const auto& m = std::get<done_resp>(f.msg);
    EXPECT_EQ(m.report.id, 55u);
    EXPECT_EQ(m.report.where, runtime::backend_kind::ambit);
    EXPECT_EQ(m.report.complete_ps, 300);
    EXPECT_EQ(m.report.output_bytes, 4096u);
  }
  roundtrip(25, waited_resp{});
  {
    const auto f = roundtrip(26, stats_resp{"{\"x\":1}"});
    EXPECT_EQ(std::get<stats_resp>(f.msg).json, "{\"x\":1}");
  }
  {
    const auto f = roundtrip(27, error_resp{"boom"});
    EXPECT_EQ(std::get<error_resp>(f.msg).message, "boom");
  }
  {
    const auto f = roundtrip(28, hello_resp{wire_version});
    EXPECT_EQ(std::get<hello_resp>(f.msg).version, wire_version);
  }
}

TEST(protocol, accepts_the_whole_supported_version_range) {
  // Frames stamped anywhere in [wire_version_min, wire_version] parse;
  // outside the range is a protocol error.
  for (std::uint8_t v = wire_version_min; v <= wire_version; ++v) {
    const auto wire = encode_frame(1, wait_req{}, v);
    frame_splitter splitter;
    splitter.feed(wire.data(), wire.size());
    EXPECT_TRUE(splitter.next().has_value()) << int(v);
  }
  for (const std::uint8_t v : {std::uint8_t{0},
                               static_cast<std::uint8_t>(wire_version + 1)}) {
    const auto wire = encode_frame(1, wait_req{}, v);
    frame_splitter splitter;
    splitter.feed(wire.data(), wire.size());
    EXPECT_THROW(splitter.next(), protocol_error) << int(v);
  }
}

TEST(protocol, reassembles_frames_split_across_feeds) {
  write_req req;
  req.session = 4;
  req.v = sample_vector(1);
  req.data = sample_bits(req.v.size, 5);
  const std::vector<std::uint8_t> wire = encode_frame(99, req);

  frame_splitter splitter;
  // One byte at a time: next() must return nullopt until the last byte.
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    splitter.feed(&wire[i], 1);
    EXPECT_FALSE(splitter.next().has_value());
  }
  splitter.feed(&wire[wire.size() - 1], 1);
  const auto frame = splitter.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->id, 99u);
  EXPECT_EQ(std::get<write_req>(frame->msg).data, req.data);
}

TEST(protocol, pops_pipelined_frames_in_order) {
  std::vector<std::uint8_t> wire;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const auto f = encode_frame(id, wait_req{});
    wire.insert(wire.end(), f.begin(), f.end());
  }
  frame_splitter splitter;
  splitter.feed(wire.data(), wire.size());
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const auto frame = splitter.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->id, id);
  }
  EXPECT_FALSE(splitter.next().has_value());
}

// ---------------------------------------------------------------------------
// Malformed input
// ---------------------------------------------------------------------------

TEST(protocol, rejects_bad_magic) {
  std::vector<std::uint8_t> wire = encode_frame(1, wait_req{});
  wire[0] ^= 0xff;
  frame_splitter splitter;
  splitter.feed(wire.data(), wire.size());
  EXPECT_THROW(splitter.next(), protocol_error);
}

TEST(protocol, rejects_oversized_length) {
  std::vector<std::uint8_t> wire = encode_frame(1, wait_req{});
  const std::uint32_t huge = max_frame_bytes + 1;
  std::memcpy(wire.data() + 4, &huge, 4);  // little-endian host in tests
  frame_splitter splitter;
  splitter.feed(wire.data(), wire.size());
  EXPECT_THROW(splitter.next(), protocol_error);
}

TEST(protocol, rejects_runt_frame) {
  std::vector<std::uint8_t> wire = encode_frame(1, wait_req{});
  const std::uint32_t tiny = 4;  // below version+id+opcode
  std::memcpy(wire.data() + 4, &tiny, 4);
  frame_splitter splitter;
  splitter.feed(wire.data(), wire.size());
  EXPECT_THROW(splitter.next(), protocol_error);
}

TEST(protocol, rejects_truncated_body) {
  // A write frame whose declared length stops mid-bitvector: the body
  // decoder must throw, not read out of bounds.
  write_req req;
  req.session = 1;
  req.v = sample_vector(1);
  req.data = sample_bits(req.v.size, 3);
  std::vector<std::uint8_t> wire = encode_frame(7, req);
  const std::uint32_t declared = static_cast<std::uint32_t>(wire.size() - 8);
  const std::uint32_t shorter = declared - 9;  // drop one word + 1 byte
  std::memcpy(wire.data() + 4, &shorter, 4);
  wire.resize(8 + shorter);
  frame_splitter splitter;
  splitter.feed(wire.data(), wire.size());
  EXPECT_THROW(splitter.next(), protocol_error);
  EXPECT_EQ(splitter.last_id(), 7u);  // failed after the id was read
}

TEST(protocol, rejects_unknown_opcode) {
  std::vector<std::uint8_t> wire = encode_frame(3, wait_req{});
  wire[8 + 1 + 8] = 0xee;  // opcode byte after version + id
  frame_splitter splitter;
  splitter.feed(wire.data(), wire.size());
  EXPECT_THROW(splitter.next(), protocol_error);
  EXPECT_EQ(splitter.last_id(), 3u);
}

TEST(protocol, rejects_trailing_bytes_in_frame) {
  std::vector<std::uint8_t> wire = encode_frame(1, wait_req{});
  // Grow the payload by one byte the body decoder will not consume.
  wire.push_back(0xab);
  const std::uint32_t longer = static_cast<std::uint32_t>(wire.size() - 8);
  std::memcpy(wire.data() + 4, &longer, 4);
  frame_splitter splitter;
  splitter.feed(wire.data(), wire.size());
  EXPECT_THROW(splitter.next(), protocol_error);
}

// ---------------------------------------------------------------------------
// Server over loopback sockets
// ---------------------------------------------------------------------------

server_config small_server_config(int shards = 2) {
  server_config cfg;
  cfg.service.shards = shards;
  cfg.service.system.org.channels = 2;
  cfg.service.system.org.ranks = 1;
  cfg.service.system.org.banks = 4;
  cfg.service.system.org.subarrays = 4;
  cfg.service.system.org.rows = 512;
  cfg.service.system.org.columns = 128;
  return cfg;
}

int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

/// Reads until EOF; returns everything received.
std::vector<std::uint8_t> drain_socket(int fd) {
  std::vector<std::uint8_t> all;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    all.insert(all.end(), buf, buf + n);
  }
  return all;
}

TEST(pim_server, answers_garbage_with_error_frame_and_closes) {
  pim_server server(small_server_config());
  server.start();

  const int fd = connect_raw(server.port());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);

  // The server must answer with a well-formed error frame, then close.
  const std::vector<std::uint8_t> reply = drain_socket(fd);
  ::close(fd);
  frame_splitter splitter;
  splitter.feed(reply.data(), reply.size());
  const auto frame = splitter.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(std::holds_alternative<error_resp>(frame->msg));

  // And the server must still serve new connections afterwards.
  remote_client client("127.0.0.1", server.port());
  const auto v = client.allocate(8192, 3);
  EXPECT_EQ(v.size(), 3u);
  server.stop();
}

TEST(pim_server, survives_truncated_and_oversized_frames) {
  pim_server server(small_server_config());
  server.start();

  {
    // Truncated body under a valid header.
    write_req req;
    req.session = 0;
    req.v = sample_vector(1);
    req.data = sample_bits(req.v.size, 3);
    std::vector<std::uint8_t> wire = encode_frame(7, req);
    const std::uint32_t shorter =
        static_cast<std::uint32_t>(wire.size() - 8 - 16);
    std::memcpy(wire.data() + 4, &shorter, 4);
    wire.resize(8 + shorter);
    const int fd = connect_raw(server.port());
    ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
    const auto reply = drain_socket(fd);
    ::close(fd);
    EXPECT_FALSE(reply.empty());  // error frame, not a crash
  }
  {
    // Oversized declared length.
    std::vector<std::uint8_t> wire = encode_frame(1, wait_req{});
    const std::uint32_t huge = max_frame_bytes + 1;
    std::memcpy(wire.data() + 4, &huge, 4);
    const int fd = connect_raw(server.port());
    ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
    const auto reply = drain_socket(fd);
    ::close(fd);
    EXPECT_FALSE(reply.empty());
  }
  {
    // Unknown opcode.
    std::vector<std::uint8_t> wire = encode_frame(5, wait_req{});
    wire[8 + 1 + 8] = 0xee;
    const int fd = connect_raw(server.port());
    ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
    const auto reply = drain_socket(fd);
    ::close(fd);
    frame_splitter splitter;
    splitter.feed(reply.data(), reply.size());
    const auto frame = splitter.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->id, 5u);  // id echoed even for an unknown opcode
    EXPECT_TRUE(std::holds_alternative<error_resp>(frame->msg));
  }

  // Healthy traffic still works.
  remote_client client("127.0.0.1", server.port());
  EXPECT_EQ(client.allocate(8192, 3).size(), 3u);
  server.stop();
}

TEST(pim_server, rejects_requests_for_foreign_sessions) {
  pim_server server(small_server_config());
  server.start();
  remote_client a("127.0.0.1", server.port());
  const int fd = connect_raw(server.port());

  // A raw connection that never opened session `a.id()` asks to
  // allocate on it: per-request error, connection stays up.
  allocate_req req;
  req.session = a.id();
  req.size = 8192;
  req.count = 1;
  const auto wire = encode_frame(1, req);
  ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
  std::uint8_t buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  ASSERT_GT(n, 0);
  frame_splitter splitter;
  splitter.feed(buf, static_cast<std::size_t>(n));
  const auto frame = splitter.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(std::holds_alternative<error_resp>(frame->msg));

  // Same connection, now with its own session: works.
  const auto open_wire = encode_frame(2, open_session_req{});
  ASSERT_GT(::send(fd, open_wire.data(), open_wire.size(), MSG_NOSIGNAL), 0);
  const ssize_t n2 = ::recv(fd, buf, sizeof(buf), 0);
  ASSERT_GT(n2, 0);
  splitter.feed(buf, static_cast<std::size_t>(n2));
  const auto opened = splitter.next();
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(std::holds_alternative<opened_resp>(opened->msg));
  ::close(fd);
  server.stop();
}

TEST(pim_server, negotiates_protocol_version_on_open) {
  pim_server server(small_server_config());
  server.start();

  {
    // remote_client's hello lands on the current version.
    remote_client client("127.0.0.1", server.port());
    EXPECT_EQ(client.negotiated_version(), wire_version);
    EXPECT_EQ(client.allocate(8192, 1).size(), 1u);
  }
  {
    // A client from the future offers more than we speak: the server
    // answers with its own maximum.
    const int fd = connect_raw(server.port());
    const auto wire = encode_frame(1, hello_req{99}, wire_version_min);
    ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
    std::uint8_t buf[512];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    frame_splitter splitter;
    splitter.feed(buf, static_cast<std::size_t>(n));
    const auto frame = splitter.next();
    ASSERT_TRUE(frame.has_value());
    ASSERT_TRUE(std::holds_alternative<hello_resp>(frame->msg));
    EXPECT_EQ(std::get<hello_resp>(frame->msg).version, wire_version);
    ::close(fd);
  }
  server.stop();
}

TEST(pim_server, frames_legacy_clients_at_the_floor_version) {
  // A client that never sends hello is older than the hello opcode:
  // the server must answer with frames stamped at the floor version —
  // the one framing every supported peer parses.
  pim_server server(small_server_config());
  server.start();
  const int fd = connect_raw(server.port());
  const auto wire = encode_frame(1, open_session_req{}, wire_version_min);
  ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
  std::uint8_t buf[512];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  ASSERT_GT(n, 8 + 1);
  EXPECT_EQ(buf[8], wire_version_min);  // version byte after the header
  frame_splitter splitter;
  splitter.feed(buf, static_cast<std::size_t>(n));
  const auto frame = splitter.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(std::holds_alternative<opened_resp>(frame->msg));
  ::close(fd);
  server.stop();
}

TEST(pim_server, rejects_mismatched_major_version_with_error_frame) {
  pim_server server(small_server_config());
  server.start();

  // A hello below the server's floor: one clean error frame, then the
  // connection closes (drain_socket sees EOF after the frame).
  const int fd = connect_raw(server.port());
  const auto wire = encode_frame(1, hello_req{0}, wire_version_min);
  ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
  const std::vector<std::uint8_t> reply = drain_socket(fd);
  ::close(fd);
  frame_splitter splitter;
  splitter.feed(reply.data(), reply.size());
  const auto frame = splitter.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(std::holds_alternative<error_resp>(frame->msg));
  EXPECT_NE(std::get<error_resp>(frame->msg).message.find("version"),
            std::string::npos);
  EXPECT_FALSE(splitter.next().has_value());

  // Other connections are unaffected.
  remote_client client("127.0.0.1", server.port());
  EXPECT_EQ(client.allocate(8192, 1).size(), 1u);
  server.stop();
}

TEST(remote_client, matches_in_process_execution_bit_for_bit) {
  // The acceptance check: one synthetic chain over the socket equals
  // the same chain in process. 4 groups × pipelined ops exercise
  // out-of-order completion (independent groups overlap across banks,
  // so response frames do not come back in request order).
  service::synthetic_config chain;
  chain.ops = 24;
  chain.groups = 4;
  chain.vector_bits = 2 * 8192;
  chain.seed = 7;

  pim_server server(small_server_config());
  server.start();
  std::uint64_t remote_digest = 0;
  {
    remote_client client("127.0.0.1", server.port());
    remote_digest = service::run_synthetic_client(client, chain).digest;
    client.barrier();
    const std::string json = client.stats_json();
    EXPECT_NE(json.find("\"latency\""), std::string::npos);
    client.close_session();
  }
  server.stop();

  service::service_config local;
  local.shards = 1;
  local.system = small_server_config().service.system;
  service::pim_service svc(local);
  svc.start();
  const std::uint64_t local_digest =
      service::run_synthetic_client(svc, chain).digest;
  svc.stop();

  EXPECT_EQ(remote_digest, local_digest);
}

TEST(remote_client, fleet_over_loopback_matches_in_process_fleet) {
  // Whole-fleet equivalence: N concurrent remote clients vs the same
  // population through in-process service_clients, digest lists equal
  // element-wise. Includes cross-session ops (submit_shared over the
  // wire, two-phase planner underneath when owners land on different
  // shards).
  std::vector<service::synthetic_config> population;
  for (int i = 0; i < 6; ++i) {
    service::synthetic_config c;
    c.ops = 16;
    c.groups = 2;
    c.vector_bits = 8192;
    c.seed = 100 + static_cast<std::uint64_t>(i);
    c.cross_fraction = i % 2 == 0 ? 0.25 : 0.0;
    population.push_back(c);
  }

  auto run_remote = [&](std::uint16_t port) {
    const int parties = static_cast<int>(population.size());
    std::vector<service::client_outcome> outcomes(population.size());
    std::vector<std::unique_ptr<remote_client>> clients;
    for (std::size_t i = 0; i < population.size(); ++i) {
      clients.push_back(std::make_unique<remote_client>("127.0.0.1", port));
    }
    // Neighbor exchange mirrors run_synthetic_fleet: client i's cross
    // ops read client (i+1)'s published v[0].
    std::vector<service::shared_vector> published(population.size());
    std::vector<std::vector<dram::bulk_vector>> setup(population.size());
    std::vector<std::thread> threads;
    service::start_gate exchange(parties);
    for (std::size_t i = 0; i < population.size(); ++i) {
      threads.emplace_back([&, i] {
        const service::synthetic_config& config = population[i];
        remote_client& client = *clients[i];
        std::vector<dram::bulk_vector> v;
        for (int g = 0; g < config.groups; ++g) {
          const auto group = client.allocate(
              config.vector_bits, service::synthetic_group_vectors);
          v.insert(v.end(), group.begin(), group.end());
        }
        rng data(config.seed ^ 0xa5a5a5a5a5a5a5a5ull);
        for (const dram::bulk_vector& vec : v) {
          client.write(vec, bitvector::random(vec.size, data));
        }
        published[i] = client.share(v[0]);
        exchange.arrive_and_wait();
        const service::shared_vector* neighbor =
            &published[(i + 1) % published.size()];
        service::client_outcome& outcome = outcomes[i];
        outcome.session = client.id();
        for (const service::synthetic_op& op :
             service::make_synthetic_ops(config)) {
          if (op.cross) {
            client.submit_shared(
                op.op, client.share(v[static_cast<std::size_t>(op.a)]),
                neighbor, client.share(v[static_cast<std::size_t>(op.d)]));
          } else {
            const dram::bulk_vector* b =
                op.b < 0 ? nullptr : &v[static_cast<std::size_t>(op.b)];
            client.submit_bulk(op.op, v[static_cast<std::size_t>(op.a)], b,
                               v[static_cast<std::size_t>(op.d)]);
          }
          ++outcome.tasks;
        }
        outcome.digest = client.digest();
      });
    }
    for (std::thread& t : threads) t.join();
    std::vector<std::uint64_t> digests;
    for (const auto& o : outcomes) digests.push_back(o.digest);
    return digests;
  };

  pim_server server(small_server_config());
  server.start();
  const std::vector<std::uint64_t> remote_digests = run_remote(server.port());
  server.stop();

  service::service_config local;
  local.shards = 2;
  local.system = small_server_config().service.system;
  service::pim_service svc(local);
  svc.start();
  const auto outcomes =
      service::run_synthetic_fleet(svc, population, /*burst=*/false);
  svc.stop();
  std::vector<std::uint64_t> local_digests;
  for (const auto& o : outcomes) local_digests.push_back(o.digest);

  EXPECT_EQ(remote_digests, local_digests);
}

TEST(remote_client, wait_barrier_drains_pipeline) {
  pim_server server(small_server_config());
  server.start();
  {
    remote_client client("127.0.0.1", server.port());
    const auto v = client.allocate(8192, 3);
    rng gen(1);
    client.write(v[0], bitvector::random(8192, gen));
    client.write(v[1], bitvector::random(8192, gen));
    for (int i = 0; i < 8; ++i) {
      client.submit_bulk(dram::bulk_op::xor_op, v[0], &v[1], v[2]);
    }
    client.barrier();  // server answers only once all 8 completed
    // After the barrier every future must already be resolved.
    client.wait_all();
  }
  server.stop();
}

// ---------------------------------------------------------------------------
// Observability opcodes: framing, error paths, streaming telemetry
// ---------------------------------------------------------------------------

TEST(protocol, round_trips_observability_messages) {
  roundtrip(30, get_metrics_req{});
  {
    trace_ctl_req req;
    req.action = trace_ctl_req::dump;
    req.path = "/tmp/trace.json";
    const auto f = roundtrip(31, req);
    const auto& m = std::get<trace_ctl_req>(f.msg);
    EXPECT_EQ(m.action, trace_ctl_req::dump);
    EXPECT_EQ(m.path, "/tmp/trace.json");
  }
  {
    const auto f = roundtrip(32, watch_stats_req{250, 5'000'000});
    const auto& m = std::get<watch_stats_req>(f.msg);
    EXPECT_EQ(m.interval_ms, 250u);
    EXPECT_EQ(m.slow_threshold_ns, 5'000'000);
  }
  {
    const auto f = roundtrip(33, metrics_resp{"{\"counters\":{}}"});
    EXPECT_EQ(std::get<metrics_resp>(f.msg).json, "{\"counters\":{}}");
  }
  {
    const auto f = roundtrip(34, trace_ack_resp{12, "[]"});
    EXPECT_EQ(std::get<trace_ack_resp>(f.msg).events, 12u);
  }
  {
    stats_push_resp push;
    push.seq = 3;
    push.last = 1;
    push.counters = {{"service.requests_completed", 42}};
    push.gauges = {{"service.shard.0.queue_depth", -1}};
    push.hists = {{"service.latency_ns", 10, 1.0, 2.0, 3.0}};
    const auto f = roundtrip(35, push);
    const auto& m = std::get<stats_push_resp>(f.msg);
    EXPECT_EQ(m.seq, 3u);
    EXPECT_EQ(m.last, 1);
    ASSERT_EQ(m.counters.size(), 1u);
    EXPECT_EQ(m.counters[0].first, "service.requests_completed");
    EXPECT_EQ(m.counters[0].second, 42u);
    ASSERT_EQ(m.gauges.size(), 1u);
    EXPECT_EQ(m.gauges[0].second, -1);
    ASSERT_EQ(m.hists.size(), 1u);
    EXPECT_EQ(m.hists[0].name, "service.latency_ns");
    EXPECT_DOUBLE_EQ(m.hists[0].p99, 3.0);
  }
}

TEST(protocol, rejects_truncated_watch_stats_body) {
  // A watch_stats frame whose declared length stops inside the
  // interval field: the decoder must throw, not read out of bounds.
  std::vector<std::uint8_t> wire = encode_frame(9, watch_stats_req{1000, -1});
  const std::uint32_t declared = static_cast<std::uint32_t>(wire.size() - 8);
  const std::uint32_t shorter = declared - 6;
  std::memcpy(wire.data() + 4, &shorter, 4);
  wire.resize(8 + shorter);
  frame_splitter splitter;
  splitter.feed(wire.data(), wire.size());
  EXPECT_THROW(splitter.next(), protocol_error);
  EXPECT_EQ(splitter.last_id(), 9u);
}

TEST(pim_server, malformed_watch_stats_body_answers_error_and_closes) {
  // The same truncated frame over a real socket: the server must
  // answer with an error frame and close this connection, without
  // disturbing a healthy client on another connection.
  pim_server server(small_server_config());
  server.start();

  remote_client healthy("127.0.0.1", server.port());

  std::vector<std::uint8_t> wire = encode_frame(5, watch_stats_req{1000, -1});
  const std::uint32_t declared = static_cast<std::uint32_t>(wire.size() - 8);
  const std::uint32_t shorter = declared - 6;
  std::memcpy(wire.data() + 4, &shorter, 4);
  wire.resize(8 + shorter);

  const int fd = connect_raw(server.port());
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  const std::vector<std::uint8_t> reply = drain_socket(fd);  // until EOF
  ::close(fd);
  frame_splitter splitter;
  splitter.feed(reply.data(), reply.size());
  const auto frame = splitter.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(std::holds_alternative<error_resp>(frame->msg));

  EXPECT_EQ(healthy.allocate(8192, 1).size(), 1u);
  server.stop();
}

TEST(remote_client, trace_dump_while_disabled_returns_empty_trace) {
  // trace_ctl dump with tracing never enabled: a well-formed ack with
  // zero events and a loadable (empty) trace document, not an error.
  pim_server server(small_server_config());
  server.start();
  {
    remote_client client("127.0.0.1", server.port());
    std::string json;
    const std::uint64_t events = client.trace_dump("", &json);
    EXPECT_EQ(events, 0u);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
    // Disable without a prior enable is equally benign.
    EXPECT_EQ(client.trace_disable(), 0u);
  }
  server.stop();
}

TEST(remote_client, watch_stats_streams_deltas_and_cancels) {
  pim_server server(small_server_config());
  server.start();
  {
    remote_client client("127.0.0.1", server.port());

    std::mutex mu;
    std::condition_variable cv;
    std::vector<stats_push_resp> pushes;
    client.watch_stats(20, [&](const stats_push_resp& push) {
      std::lock_guard<std::mutex> lock(mu);
      pushes.push_back(push);
      cv.notify_all();
    });
    // Generate server-side activity between pushes so deltas have
    // something to carry.
    const auto vs = client.allocate(8192, 2);
    client.submit_bulk(dram::bulk_op::not_op, vs[0], nullptr, vs[1]).get();
    {
      std::unique_lock<std::mutex> lock(mu);
      ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                              [&] { return pushes.size() >= 3; }));
    }
    client.unwatch_stats();

    std::lock_guard<std::mutex> lock(mu);
    // Seq 0 is the full snapshot and must already carry the service
    // aggregates and per-shard gauges the dashboard renders.
    EXPECT_EQ(pushes.front().seq, 0u);
    auto has_counter = [](const stats_push_resp& p, const std::string& name) {
      for (const auto& [n, v] : p.counters) {
        if (n == name) return true;
      }
      return false;
    };
    auto has_gauge = [](const stats_push_resp& p, const std::string& name) {
      for (const auto& [n, v] : p.gauges) {
        if (n == name) return true;
      }
      return false;
    };
    EXPECT_TRUE(has_counter(pushes.front(), "service.requests_completed"));
    EXPECT_TRUE(has_gauge(pushes.front(), "service.shard.0.queue_depth"));
    // Seq runs contiguously within the watch; the cancel is a watch
    // replacement, so its final push starts a fresh epoch at seq 0.
    ASSERT_GE(pushes.size(), 2u);
    for (std::size_t i = 1; i + 1 < pushes.size(); ++i) {
      EXPECT_EQ(pushes[i].seq, pushes[i - 1].seq + 1);
    }
    // The orderly cancel delivered a final push flagged `last`, and
    // nothing after it.
    EXPECT_EQ(pushes.back().last, 1);
    EXPECT_EQ(pushes.back().seq, 0u);
  }
  server.stop();
}

TEST(remote_client, watcher_disconnect_mid_stream_leaves_server_healthy) {
  // A watcher that vanishes without cancelling (process death): the
  // server's writer must notice the dead socket and reap the
  // connection, leaving the server fully serviceable.
  pim_server server(small_server_config());
  server.start();
  {
    remote_client watcher("127.0.0.1", server.port());
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pushes = 0;
    watcher.watch_stats(10, [&](const stats_push_resp&) {
      std::lock_guard<std::mutex> lock(mu);
      ++pushes;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return pushes >= 2; }));
    // Destructor closes the socket with the watch still active.
  }
  {
    remote_client client("127.0.0.1", server.port());
    const auto vs = client.allocate(8192, 2);
    client.submit_bulk(dram::bulk_op::not_op, vs[0], nullptr, vs[1]).get();
    EXPECT_NE(client.digest(), 0u);
  }
  server.stop();
}

TEST(remote_client, server_side_failure_surfaces_as_future_error) {
  pim_server server(small_server_config());
  server.start();
  {
    remote_client client("127.0.0.1", server.port());
    // A submit naming a vector that was never allocated fails on the
    // shard; the error must travel back through the response frame
    // into the future.
    dram::bulk_vector bogus;
    bogus.size = 8192;
    dram::address a;
    a.channel = -1;  // virtual handle with no translation
    a.rank = 0;
    a.row = 4096;
    bogus.rows.push_back(a);
    service::request_future f =
        client.submit_bulk(dram::bulk_op::not_op, bogus, nullptr, bogus);
    EXPECT_THROW(f.get(), std::runtime_error);
    // wait_all surfaces the recorded failure too, then clears it.
    EXPECT_THROW(client.wait_all(), std::runtime_error);
    // The connection is still healthy for correct requests.
    EXPECT_EQ(client.allocate(8192, 2).size(), 2u);
  }
  server.stop();
}

}  // namespace
}  // namespace pim::net
