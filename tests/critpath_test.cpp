// Tests for wait-state attribution and the critical-path analyzer
// (obs/critpath.h): known-path DAG shapes (chain, diamond, fan-in),
// the zero-remainder segment partition, permutation determinism,
// zero-duration tasks, the what-if projector (identity replay plus
// zeroed wait classes), the scheduler's telescoping stamps and
// wait-counter partition, and the v4 wire round-trip of the new
// report fields (with v3 peers reading zeros).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/pim_system.h"
#include "net/protocol.h"
#include "obs/critpath.h"
#include "obs/profile.h"

namespace pim::obs {
namespace {

/// A fully-stamped sample: admit <= submit <= release <= start <=
/// complete, with the release edge (blocked_on) the analyzer chains
/// through. Timestamps are plain picosecond integers — the analyzer
/// never assumes a tick grid.
sim_op_sample make(std::uint64_t id, std::int64_t admit,
                   std::int64_t submit, std::int64_t release,
                   std::int64_t start, std::int64_t complete,
                   std::uint64_t blocked_on = 0, bool wire_hop = false,
                   int group = 0) {
  sim_op_sample s;
  s.group = group;
  s.id = id;
  s.op = static_cast<int>(id);
  s.sub = 0;
  s.admit_ps = admit;
  s.submit_ps = submit;
  s.release_ps = release;
  s.start_ps = start;
  s.complete_ps = complete;
  s.blocked_on = blocked_on;
  s.blocked_row = blocked_on != 0 ? 7 : 0;
  s.wire_hop = wire_hop;
  return s;
}

std::uint64_t segment_sum(const critpath_report& r) {
  std::uint64_t total = 0;
  for (int i = 0; i <= 5; ++i) total += r.state_ps[i];
  return total;
}

// ---------------------------------------------------------------------------
// analyze(): DAG shapes with known critical paths
// ---------------------------------------------------------------------------

TEST(CritpathTest, EmptyInputIsVacuouslyExact) {
  const critpath_report r = analyze({});
  EXPECT_TRUE(r.exact);
  EXPECT_TRUE(r.tasks.empty());
  EXPECT_EQ(r.span_ps(), 0);
}

TEST(CritpathTest, ChainFollowsEveryReleaseEdge) {
  // 1 -> 2 -> 3, each released at the instant its blocker completed.
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10),
      make(2, 2, 2, 10, 10, 25, /*blocked_on=*/1),
      make(3, 3, 3, 25, 25, 40, /*blocked_on=*/2),
  };
  const critpath_report r = analyze(samples);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.tasks, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.path_start_ps, 0);
  EXPECT_EQ(r.path_end_ps, 40);
  EXPECT_EQ(r.span_ps(), 40);
  // The whole span is execution: hops start at their release instant.
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::executing)], 40u);
  EXPECT_EQ(segment_sum(r), 40u);
  EXPECT_EQ(r.dominant(), wait_state::executing);
  EXPECT_EQ(r.dominant_pct(), 100);
}

TEST(CritpathTest, DiamondPicksTheSlowArm) {
  // 1 fans out to 2 (fast) and 3 (slow); 4 joins behind 3.
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10),
      make(2, 1, 1, 10, 10, 20, /*blocked_on=*/1),
      make(3, 1, 1, 10, 10, 30, /*blocked_on=*/1),
      make(4, 2, 2, 30, 30, 45, /*blocked_on=*/3),
  };
  const critpath_report r = analyze(samples);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.tasks, (std::vector<std::uint64_t>{1, 3, 4}));
  EXPECT_EQ(r.span_ps(), 45);
  EXPECT_EQ(segment_sum(r), 45u);
}

TEST(CritpathTest, FanInChainsThroughTheLastHazardToClear) {
  // 3 waited on both 1 and 2; the scheduler stamps blocked_on with
  // the dependency whose completion released it (2, the later), and
  // 3 then waited 2 more ps for an executor slot (bank_busy).
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10),
      make(2, 0, 0, 0, 0, 18),
      make(3, 1, 1, 18, 20, 33, /*blocked_on=*/2),
  };
  const critpath_report r = analyze(samples);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.tasks, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(r.span_ps(), 33);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::bank_busy)], 2u);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::executing)], 31u);
}

TEST(CritpathTest, RootOwnsItsAdmissionAndHazardWait) {
  // A single task that waited everywhere: 5 ps in the admission
  // queue, 4 ps blocked (on a task outside the sample set), 3 ps for
  // a slot, 8 ps executing. The timeline starts at 1, not 0: a zero
  // admit stamp means "unknown" and clamps to submit.
  const critpath_report r =
      analyze({make(1, 1, 6, 10, 13, 21)});
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.span_ps(), 20);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::admission_queued)], 5u);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::hazard_blocked)], 4u);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::bank_busy)], 3u);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::executing)], 8u);
  EXPECT_EQ(r.dominant(), wait_state::executing);
  EXPECT_EQ(r.dominant_pct(), 40);  // 8 / 20
}

TEST(CritpathTest, WireHopSegmentsAreTypedWire) {
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10),
      make(2, 1, 1, 10, 10, 30, /*blocked_on=*/1, /*wire_hop=*/true),
  };
  const critpath_report r = analyze(samples);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::wire)], 20u);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::executing)], 10u);
  EXPECT_EQ(r.dominant(), wait_state::wire);
}

TEST(CritpathTest, BrokenEdgeStopsTheChain) {
  // 2 claims a blocker that is not in the sample set: the chain stops
  // at 2, which then owns its own hazard wait as path time.
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10),
      make(2, 1, 1, 12, 12, 25, /*blocked_on=*/99),
  };
  const critpath_report r = analyze(samples);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.tasks, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::hazard_blocked)], 11u);
}

TEST(CritpathTest, MismatchedReleaseInstantBreaksTheEdge) {
  // The blocker exists but completed at 9, not at 2's release instant
  // 12 — not the release edge the scheduler stamps, so no chaining.
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 9),
      make(2, 1, 1, 12, 12, 25, /*blocked_on=*/1),
  };
  const critpath_report r = analyze(samples);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.tasks, (std::vector<std::uint64_t>{2}));
}

TEST(CritpathTest, EdgesNeverCrossGroups) {
  // Same numeric id on another shard's clock: ids are per-scheduler,
  // so the edge must not resolve against group 1's task 1.
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10, 0, false, /*group=*/1),
      make(2, 1, 1, 10, 10, 25, /*blocked_on=*/1, false, /*group=*/0),
  };
  const critpath_report r = analyze(samples);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.tasks, (std::vector<std::uint64_t>{2}));
}

TEST(CritpathTest, ZeroDurationTasksLeaveNoSegments) {
  // A zero-lifetime task chained mid-path: admitted, released, and
  // completed at one instant. It contributes a hop but no slices, and
  // the partition stays exact.
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10),
      make(2, 10, 10, 10, 10, 10, /*blocked_on=*/1),
      make(3, 5, 5, 10, 10, 22, /*blocked_on=*/2),
  };
  const critpath_report r = analyze(samples);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.tasks, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.span_ps(), 22);
  EXPECT_EQ(segment_sum(r), 22u);
  for (const path_segment& seg : r.segments) {
    EXPECT_GT(seg.duration_ps(), 0);
  }
}

TEST(CritpathTest, PermutationsOfTheInputAnalyzeIdentically) {
  std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10),
      make(2, 1, 1, 10, 10, 20, /*blocked_on=*/1),
      make(3, 1, 1, 10, 10, 30, /*blocked_on=*/1),
      make(4, 2, 2, 30, 32, 45, /*blocked_on=*/3),
  };
  const critpath_report base = analyze(samples);
  std::int64_t base_projected[6];
  for (int w = 0; w <= 5; ++w) {
    base_projected[w] = project(samples, static_cast<wait_state>(w));
  }
  std::sort(samples.begin(), samples.end(),
            [](const sim_op_sample& a, const sim_op_sample& b) {
              return a.id < b.id;
            });
  do {
    const critpath_report r = analyze(samples);
    EXPECT_EQ(r.tasks, base.tasks);
    EXPECT_EQ(r.exact, base.exact);
    EXPECT_EQ(r.span_ps(), base.span_ps());
    EXPECT_EQ(r.window_ps(), base.window_ps());
    for (int i = 0; i <= 5; ++i) {
      EXPECT_EQ(r.state_ps[i], base.state_ps[i]);
    }
    for (int w = 0; w <= 5; ++w) {
      EXPECT_EQ(project(samples, static_cast<wait_state>(w)),
                base_projected[w]);
    }
  } while (std::next_permutation(
      samples.begin(), samples.end(),
      [](const sim_op_sample& a, const sim_op_sample& b) {
        return a.id < b.id;
      }));
}

TEST(CritpathTest, TiedCompletionsPickTheLowestId) {
  // Both chains end at 30; the walk must anchor on the lowest
  // (group, id) so any input order gives the same path.
  const std::vector<sim_op_sample> samples = {
      make(5, 0, 0, 0, 0, 30),
      make(2, 0, 0, 0, 0, 30),
  };
  const critpath_report r = analyze(samples);
  EXPECT_EQ(r.tasks, (std::vector<std::uint64_t>{2}));
}

TEST(CritpathTest, PreV4SamplesClampOntoTheInvariant) {
  // Zero admit/release (trace files, v<4 peers) must read as "no
  // admission wait, hazard unknown": admit := submit, release := start.
  sim_op_sample s = make(1, 0, 0, 0, 0, 0);
  s.submit_ps = 100;
  s.release_ps = 0;
  s.admit_ps = 0;
  s.start_ps = 140;
  s.complete_ps = 200;
  const critpath_report r = analyze({s});
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.span_ps(), 100);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::admission_queued)], 0u);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::hazard_blocked)], 40u);
  EXPECT_EQ(r.state_ps[static_cast<int>(wait_state::executing)], 60u);
}

// ---------------------------------------------------------------------------
// project(): identity replay and zeroed wait classes
// ---------------------------------------------------------------------------

TEST(ProjectTest, IdentityReplayReproducesTheMeasuredWindow) {
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 5, 9, 12, 20),
      make(2, 2, 2, 20, 20, 35, /*blocked_on=*/1),
      make(3, 3, 3, 20, 22, 30, /*blocked_on=*/1),
  };
  const critpath_report r = analyze(samples);
  EXPECT_EQ(project(samples, wait_state::none), r.window_ps());
}

TEST(ProjectTest, ZeroingHazardCollapsesTheChain) {
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10),
      make(2, 2, 2, 10, 10, 25, /*blocked_on=*/1),   // exec 15
      make(3, 3, 3, 25, 25, 40, /*blocked_on=*/2),   // exec 15
  };
  EXPECT_EQ(project(samples, wait_state::none), 40);
  // Hazards gone: 2 starts at its submit (2 + 15 = 17), 3 at its
  // submit (3 + 15 = 18); the window lower-bounds at 18.
  EXPECT_EQ(project(samples, wait_state::hazard_blocked), 18);
}

TEST(ProjectTest, ZeroingExecutionLeavesOnlyWaits) {
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10),
      make(2, 2, 2, 10, 10, 25, /*blocked_on=*/1),
      make(3, 3, 3, 25, 25, 40, /*blocked_on=*/2),
  };
  // All execution zeroed: 1 completes at 0, 2 at max(2,0)=2, 3 at
  // max(3,2)=3.
  EXPECT_EQ(project(samples, wait_state::executing), 3);
}

TEST(ProjectTest, ZeroingWireOnlyAffectsWireHops) {
  const std::vector<sim_op_sample> samples = {
      make(1, 0, 0, 0, 0, 10),
      make(2, 0, 0, 10, 10, 30, /*blocked_on=*/1, /*wire_hop=*/true),
      make(3, 0, 0, 30, 30, 42, /*blocked_on=*/2),
  };
  EXPECT_EQ(project(samples, wait_state::none), 42);
  // The wire hop vanishes: 3 is released when 2 "completes" at 10,
  // then executes its 12 ps.
  EXPECT_EQ(project(samples, wait_state::wire), 22);
  // Zeroing executing keeps the wire hop: 1 finishes instantly, 2
  // still transfers for 20 ps, 3 adds nothing.
  EXPECT_EQ(project(samples, wait_state::executing), 20);
}

TEST(ProjectTest, UnresolvableEdgeKeepsTheMeasuredHazardWait) {
  // 2's blocker is outside the sample set: the hazard wait cannot
  // shrink, so it is kept as an opaque duration in every projection
  // that does not zero hazards.
  const std::vector<sim_op_sample> samples = {
      make(2, 1, 1, 12, 12, 25, /*blocked_on=*/99),
  };
  EXPECT_EQ(project(samples, wait_state::none), 24);
  EXPECT_EQ(project(samples, wait_state::hazard_blocked), 13);
}

// ---------------------------------------------------------------------------
// Scheduler stamps: telescoping timestamps and the wait-counter
// partition, end to end through a real runtime
// ---------------------------------------------------------------------------

core::pim_system_config small_config() {
  core::pim_system_config cfg;
  cfg.org.channels = 1;
  cfg.org.ranks = 1;
  cfg.org.banks = 4;
  cfg.org.subarrays = 4;
  cfg.org.rows = 256;
  cfg.org.columns = 8;
  return cfg;
}

TEST(SchedulerStampsTest, TimestampsTelescope) {
  core::pim_system sys(small_config());
  auto vecs = sys.allocate(1'000, 3);
  // A RAW chain so the second task really blocks on the first.
  runtime::task_future f1 =
      sys.submit_bulk(dram::bulk_op::and_op, vecs[0], &vecs[1], vecs[2]);
  runtime::task_future f2 =
      sys.submit_bulk(dram::bulk_op::or_op, vecs[2], &vecs[1], vecs[0]);
  sys.wait_all();
  for (const runtime::task_future* f : {&f1, &f2}) {
    const runtime::task_report& r = f->report();
    EXPECT_LE(r.admit_ps, r.submit_ps);
    EXPECT_LE(r.submit_ps, r.release_ps);
    EXPECT_LE(r.release_ps, r.start_ps);
    EXPECT_LE(r.start_ps, r.complete_ps);
  }
  // The dependent's release edge points at the blocker, stamped at
  // the blocker's completion instant.
  const runtime::task_report& blocked = f2.report();
  EXPECT_EQ(blocked.blocked_on, f1.report().id);
  EXPECT_EQ(blocked.release_ps, f1.report().complete_ps);
  EXPECT_GT(blocked.release_ps, blocked.submit_ps);
}

TEST(SchedulerStampsTest, WaitCountersPartitionLifetime) {
  core::pim_system sys(small_config());
  auto vecs = sys.allocate(2'000, 4);
  for (int round = 0; round < 4; ++round) {
    sys.submit_bulk(dram::bulk_op::and_op, vecs[0], &vecs[1], vecs[2]);
    sys.submit_bulk(dram::bulk_op::or_op, vecs[2], &vecs[1], vecs[3]);
    sys.submit_bulk(dram::bulk_op::xor_op, vecs[3], &vecs[2], vecs[0]);
  }
  sys.wait_all();
  const runtime::scheduler_stats& s = sys.runtime().stats().sched;
  EXPECT_GT(s.task_lifetime_ps, 0u);
  EXPECT_GT(s.wait_hazard_ps, 0u);  // the chains really blocked
  EXPECT_EQ(s.wait_admission_ps + s.wait_hazard_ps + s.wait_bank_ps +
                s.exec_ps + s.wire_ps,
            s.task_lifetime_ps);
}

TEST(SchedulerStampsTest, AnalyzeRealReportsExactly) {
  core::pim_system sys(small_config());
  auto vecs = sys.allocate(2'000, 4);
  std::vector<runtime::task_future> futures;
  futures.push_back(
      sys.submit_bulk(dram::bulk_op::and_op, vecs[0], &vecs[1], vecs[2]));
  futures.push_back(
      sys.submit_bulk(dram::bulk_op::or_op, vecs[2], &vecs[1], vecs[3]));
  futures.push_back(
      sys.submit_bulk(dram::bulk_op::xor_op, vecs[3], &vecs[0], vecs[1]));
  sys.wait_all();
  std::vector<sim_op_sample> samples;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const runtime::task_report& r = futures[i].report();
    sim_op_sample s;
    s.group = 0;
    s.id = r.id;
    s.op = static_cast<int>(i);
    s.admit_ps = r.admit_ps;
    s.submit_ps = r.submit_ps;
    s.release_ps = r.release_ps;
    s.start_ps = r.start_ps;
    s.complete_ps = r.complete_ps;
    s.blocked_on = r.blocked_on;
    s.blocked_row = r.blocked_row;
    s.wire_hop = r.wire_hop;
    samples.push_back(s);
  }
  const critpath_report r = analyze(samples);
  EXPECT_TRUE(r.exact);
  EXPECT_GE(r.tasks.size(), 2u);  // the RAW chain is on the path
  EXPECT_EQ(project(samples, wait_state::none), r.window_ps());
  EXPECT_LE(project(samples, wait_state::hazard_blocked), r.window_ps());
}

}  // namespace
}  // namespace pim::obs

// ---------------------------------------------------------------------------
// Wire protocol v4: the report's wait-state fields round-trip, and a
// v3 peer reads the old grammar (zeros) cleanly
// ---------------------------------------------------------------------------

namespace pim::net {
namespace {

runtime::task_report stamped_report() {
  runtime::task_report r;
  r.id = 55;
  r.stream = 2;
  r.kind = runtime::task_kind::bulk_bool;
  r.where = runtime::backend_kind::ambit;
  r.admit_ps = 4;
  r.submit_ps = 10;
  r.release_ps = 15;
  r.start_ps = 20;
  r.complete_ps = 300;
  r.output_bytes = 4096;
  r.blocked_on = 17;
  r.blocked_row = 0xfeedbeef;
  r.wire_hop = true;
  return r;
}

net_frame decode_one(const std::vector<std::uint8_t>& wire) {
  frame_splitter splitter;
  splitter.feed(wire.data(), wire.size());
  auto f = splitter.next();
  EXPECT_TRUE(f.has_value());
  return std::move(*f);
}

TEST(WireCritpathTest, V4RoundTripsTheWaitStateFields) {
  done_resp resp;
  resp.report = stamped_report();
  const net_frame f = decode_one(encode_frame(9, resp, /*version=*/4));
  const auto& m = std::get<done_resp>(f.msg);
  EXPECT_EQ(m.report.admit_ps, 4);
  EXPECT_EQ(m.report.release_ps, 15);
  EXPECT_EQ(m.report.blocked_on, 17u);
  EXPECT_EQ(m.report.blocked_row, 0xfeedbeefu);
  EXPECT_TRUE(m.report.wire_hop);
  // The pre-v4 fields still round-trip untouched.
  EXPECT_EQ(m.report.id, 55u);
  EXPECT_EQ(m.report.complete_ps, 300);
  EXPECT_EQ(m.report.output_bytes, 4096u);
}

TEST(WireCritpathTest, V3PeersSeeTheOldGrammarAndReportZeros) {
  done_resp resp;
  resp.report = stamped_report();
  const net_frame f = decode_one(encode_frame(9, resp, /*version=*/3));
  const auto& m = std::get<done_resp>(f.msg);
  // The v4 tail was omitted at the negotiated version, so the decoder
  // leaves the new fields at their zero defaults...
  EXPECT_EQ(m.report.admit_ps, 0);
  EXPECT_EQ(m.report.release_ps, 0);
  EXPECT_EQ(m.report.blocked_on, 0u);
  EXPECT_EQ(m.report.blocked_row, 0u);
  EXPECT_FALSE(m.report.wire_hop);
  // ...while everything the old grammar carries survives.
  EXPECT_EQ(m.report.id, 55u);
  EXPECT_EQ(m.report.submit_ps, 10);
  EXPECT_EQ(m.report.complete_ps, 300);
}

}  // namespace
}  // namespace pim::net
