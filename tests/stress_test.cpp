// Stress and property tests: randomized workloads against simulator
// invariants (every request completes, protocol rules hold under
// arbitrary interleavings, functional results stay exact under load).
#include <gtest/gtest.h>

#include "dram/ambit.h"
#include "dram/ambit_model.h"
#include "dram/memory_system.h"
#include "dram/rowclone.h"

namespace pim::dram {
namespace {

organization stress_org() {
  organization o;
  o.channels = 2;
  o.ranks = 2;
  o.banks = 4;
  o.subarrays = 4;
  o.rows = 256;
  o.columns = 8;
  return o;
}

/// Randomized request storms: every accepted request must complete,
/// under open and closed row policies, with refresh interleaved.
class ControllerFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, row_policy>> {
};

TEST_P(ControllerFuzzTest, EveryAcceptedRequestCompletes) {
  const auto [seed, policy] = GetParam();
  const organization org = stress_org();
  memory_system mem(org, ddr3_1600(), policy);
  rng gen(seed);
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  for (int burst = 0; burst < 50; ++burst) {
    const int count = static_cast<int>(gen.next_below(40));
    for (int i = 0; i < count; ++i) {
      request req;
      req.kind = gen.next_bool(0.3) ? request_kind::write
                                    : request_kind::read;
      req.addr = gen.next_below(org.total_bytes() / 64) * 64;
      req.on_complete = [&completed](picoseconds) { ++completed; };
      if (mem.enqueue(std::move(req))) ++accepted;
    }
    const auto idle_for = gen.next_below(300);
    for (std::uint64_t c = 0; c < idle_for; ++c) mem.tick();
  }
  mem.drain();
  EXPECT_EQ(completed, accepted);
  EXPECT_GT(accepted, 100u);
  // Refresh kept running throughout.
  EXPECT_GE(mem.counters().get("dram.ref"), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ControllerFuzzTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(row_policy::open,
                                         row_policy::closed)));

/// Mixed bulk ops and host requests: functional results stay exact
/// while regular traffic interleaves with Ambit command sequences.
TEST(MixedWorkloadStressTest, AmbitCorrectUnderHostTraffic) {
  const organization org = stress_org();
  memory_system mem(org, ddr3_1600());
  ambit_allocator alloc(org);
  ambit_engine engine(mem);
  rng gen(77);

  struct pending {
    bulk_op op;
    bitvector a;
    bitvector b;
    bulk_vector dest;
  };
  std::vector<pending> checks;
  std::uint64_t host_completed = 0;
  std::uint64_t host_accepted = 0;

  for (int round = 0; round < 20; ++round) {
    const bits size = org.row_bits() + gen.next_below(org.row_bits() * 2);
    auto group = alloc.allocate_group(size, 3);
    const bulk_op op =
        all_bulk_ops()[gen.next_below(all_bulk_ops().size())];
    pending p{op, bitvector::random(size, gen), bitvector::random(size, gen),
              group[2]};
    engine.write_vector(group[0], p.a);
    engine.write_vector(group[1], p.b);
    engine.execute(op, group[0], is_unary(op) ? nullptr : &group[1],
                   group[2]);
    checks.push_back(std::move(p));
    // Interleave host reads/writes.
    for (int i = 0; i < 20; ++i) {
      request req;
      req.kind = gen.next_bool(0.5) ? request_kind::write
                                    : request_kind::read;
      req.addr = gen.next_below(org.total_bytes() / 64) * 64;
      req.on_complete = [&host_completed](picoseconds) { ++host_completed; };
      if (mem.enqueue(std::move(req))) ++host_accepted;
    }
    for (int i = 0; i < 50; ++i) mem.tick();
  }
  mem.drain();
  EXPECT_EQ(host_completed, host_accepted);
  for (const pending& p : checks) {
    bitvector expected;
    switch (p.op) {
      case bulk_op::not_op: expected = ~p.a; break;
      case bulk_op::and_op: expected = p.a & p.b; break;
      case bulk_op::or_op: expected = p.a | p.b; break;
      case bulk_op::nand_op: expected = ~(p.a & p.b); break;
      case bulk_op::nor_op: expected = ~(p.a | p.b); break;
      case bulk_op::xor_op: expected = p.a ^ p.b; break;
      case bulk_op::xnor_op: expected = ~(p.a ^ p.b); break;
    }
    EXPECT_EQ(engine.read_vector(p.dest), expected) << to_string(p.op);
  }
}

/// RowClone chains: copy a row through a pipeline of FPM/PSM hops and
/// verify end-to-end content equality.
TEST(RowCloneStressTest, CopyChainsPreserveData) {
  const organization org = stress_org();
  memory_system mem(org, ddr3_1600());
  rowclone_engine rc(mem);
  rng gen(88);
  const bitvector original = bitvector::random(org.row_bits(), gen);
  address current;
  current.row = 0;
  mem.row(current) = original;
  for (int hop = 0; hop < 16; ++hop) {
    address next = current;
    if (hop % 2 == 0) {
      // FPM within the subarray: a different data row.
      next.row = (current.row % org.rows_per_subarray() < 10)
                     ? current.row + 3
                     : current.row - 3;
      rc.copy_fpm(current, next);
    } else {
      next.bank = (current.bank + 1) % org.banks;
      rc.copy_psm(current, next);
    }
    mem.drain();
    current = next;
  }
  EXPECT_EQ(mem.row_or_zero(current), original);
}

/// Monte-Carlo process variation: the TRA failure rate observed at the
/// sense amps scales linearly with the injected bit-flip probability
/// (the reliability question Ambit's §process-variation study answers).
TEST(AmbitVariationSweepTest, ErrorRateTracksInjectedProbability) {
  constexpr std::size_t width = 4096;
  for (const double p : {0.001, 0.01, 0.05}) {
    ambit_subarray_model model(16, width, {{12, 13}});
    model.set_variation(p, 1234);
    model.write_row(14, bitvector(width, false));
    rng gen(55);
    std::size_t wrong = 0;
    constexpr int trials = 40;
    for (int t = 0; t < trials; ++t) {
      const bitvector a = bitvector::random(width, gen);
      const bitvector b = bitvector::random(width, gen);
      model.write_row(0, a);
      model.write_row(1, b);
      model.activate(0);
      model.copy_activate(8);
      model.precharge();
      model.activate(1);
      model.copy_activate(9);
      model.precharge();
      model.activate(14);
      model.copy_activate(10);
      model.precharge();
      model.triple_activate(8, 9, 10);
      model.precharge();
      wrong += (model.read_row(8) ^ (a & b)).popcount();
    }
    const double rate =
        static_cast<double>(wrong) / static_cast<double>(trials * width);
    EXPECT_NEAR(rate, p, p * 0.5) << "injected p=" << p;
  }
}

/// Allocator soak: groups never overlap and never collide with
/// reserved rows, across many allocations of varied sizes.
TEST(AllocatorSoakTest, NoOverlapNoReservedRows) {
  const organization org = stress_org();
  ambit_allocator alloc(org);
  const subarray_layout layout(org);
  rng gen(66);
  std::set<std::tuple<int, int, int, int>> seen;  // ch, rank, bank, row
  for (int i = 0; i < 120; ++i) {
    const bits size = 1 + gen.next_below(org.row_bits() * 3);
    const int count = 1 + static_cast<int>(gen.next_below(3));
    auto group = alloc.allocate_group(size, count);
    for (const auto& v : group) {
      for (const auto& a : v.rows) {
        EXPECT_FALSE(layout.is_reserved(a.row));
        const auto key = std::make_tuple(a.channel, a.rank, a.bank, a.row);
        EXPECT_TRUE(seen.insert(key).second)
            << "row allocated twice: bank " << a.bank << " row " << a.row;
      }
    }
  }
}

/// Timing invariant: simulated time advances monotonically and bulk
/// sequence completion times are consistent with AAP-granularity math.
TEST(TimingInvariantTest, BulkOpLatencyBounds) {
  const organization org = stress_org();
  memory_system mem(org, ddr3_1600());
  ambit_allocator alloc(org);
  ambit_engine engine(mem);
  const timing_params t = ddr3_1600();
  for (bulk_op op : all_bulk_ops()) {
    auto group = alloc.allocate_group(org.row_bits(), 3);
    const picoseconds start = mem.now_ps();
    engine.execute(op, group[0], is_unary(op) ? nullptr : &group[1],
                   group[2]);
    mem.drain();
    const picoseconds elapsed = mem.now_ps() - start;
    const int steps = engine.compiler().step_count(op);
    const picoseconds aap = (t.tras + t.trp) * t.tck_ps;
    // One row on one bank: latency within ~[steps - final tRP,
    // steps + 2] AAPs — the sequence completes at the final PRE's
    // issue (the result is already restored), and the upper slack
    // covers command-bus cycles and drain granularity.
    EXPECT_GE(elapsed, steps * aap - (t.trp + 2) * t.tck_ps)
        << to_string(op);
    EXPECT_LE(elapsed, (steps + 2) * aap) << to_string(op);
  }
}

}  // namespace
}  // namespace pim::dram
