// Tests for the sharded PIM service front-end: session routing, the
// client request API, admission control (bounded queues +
// backpressure), fair-share popping, shutdown semantics, and
// bit-for-bit equivalence across shard counts.
#include <gtest/gtest.h>

#include "common/digest.h"
#include "service/synthetic.h"

namespace pim::service {
namespace {

core::pim_system_config small_system() {
  core::pim_system_config cfg;
  cfg.org.channels = 1;
  cfg.org.ranks = 1;
  cfg.org.banks = 4;
  cfg.org.subarrays = 4;
  cfg.org.rows = 256;
  cfg.org.columns = 8;
  return cfg;
}

service_config small_service(int shards) {
  service_config cfg;
  cfg.shards = shards;
  cfg.system = small_system();
  return cfg;
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, RangeRoutingMakesContiguousBlocks) {
  shard_router router(4, shard_routing::range, /*keys_per_shard=*/2);
  EXPECT_EQ(router.route(0), 0);
  EXPECT_EQ(router.route(1), 0);
  EXPECT_EQ(router.route(2), 1);
  EXPECT_EQ(router.route(5), 2);
  EXPECT_EQ(router.route(7), 3);
  // Keys past the last block clamp to the last shard.
  EXPECT_EQ(router.route(1000), 3);
}

TEST(ShardRouterTest, HashRoutingCoversAllShards) {
  shard_router router(4, shard_routing::hash);
  std::vector<int> hits(4, 0);
  for (std::uint64_t key = 0; key < 64; ++key) {
    const int s = router.route(key);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    ++hits[static_cast<std::size_t>(s)];
  }
  for (int h : hits) EXPECT_GT(h, 0);  // no empty shard over 64 keys
}

TEST(ShardRouterTest, RejectsInvalidConfig) {
  EXPECT_THROW(shard_router(0), std::invalid_argument);
  EXPECT_THROW(shard_router(2, shard_routing::range, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Client API basics
// ---------------------------------------------------------------------------

TEST(ServiceClientTest, ExecutesBulkOpsCorrectly) {
  pim_service svc(small_service(1));
  svc.start();
  service_client client(svc);

  const bits size = 2'000;
  auto v = client.allocate(size, 3);
  ASSERT_EQ(v.size(), 3u);
  rng gen(7);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  client.write(v[0], a);
  client.write(v[1], b);

  request_future f = client.submit_bulk(dram::bulk_op::xor_op, v[0], &v[1],
                                        v[2]);
  const request_result& r = f.get();
  EXPECT_EQ(r.report.kind, runtime::task_kind::bulk_bool);
  EXPECT_GT(r.report.complete_ps, r.report.submit_ps);
  EXPECT_EQ(client.read(v[2]), a ^ b);

  svc.stop();
}

TEST(ServiceClientTest, ChainedOpsPreserveProgramOrder) {
  pim_service svc(small_service(1));
  svc.start();
  service_client client(svc);

  const bits size = 1'500;
  auto v = client.allocate(size, 4);
  rng gen(11);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  client.write(v[0], a);
  client.write(v[1], b);

  client.submit_bulk(dram::bulk_op::and_op, v[0], &v[1], v[2]);
  client.submit_bulk(dram::bulk_op::or_op, v[2], &v[0], v[3]);
  client.submit_bulk(dram::bulk_op::xor_op, v[0], &v[1], v[2]);  // WAR
  client.wait_all();

  EXPECT_EQ(client.read(v[2]), a ^ b);
  EXPECT_EQ(client.read(v[3]), (a & b) | a);
  svc.stop();
}

TEST(ServiceClientTest, InvalidTaskFailsItsFutureOnly) {
  pim_service svc(small_service(1));
  svc.start();
  service_client client(svc);

  const bits size = 1'000;
  auto v = client.allocate(size, 3);
  // Forced misroute: a row copy on the Ambit backend is invalid and
  // must fail the request's future, not wedge the shard.
  runtime::pim_task bad;
  bad.payload = runtime::row_copy_args{v[0].rows[0], v[1].rows[0], true};
  bad.forced_backend = runtime::backend_kind::ambit;
  request_future f = client.submit(std::move(bad));
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_THROW(client.wait_all(), std::runtime_error);

  // The shard is still serviceable afterwards.
  rng gen(3);
  const bitvector a = bitvector::random(size, gen);
  client.write(v[0], a);
  client.submit_bulk(dram::bulk_op::not_op, v[0], nullptr, v[2]);
  client.wait_all();
  EXPECT_EQ(client.read(v[2]), ~a);
  svc.stop();
}

// ---------------------------------------------------------------------------
// Admission control and backpressure
// ---------------------------------------------------------------------------

TEST(ServiceAdmissionTest, TrySubmitRejectsWhenQueueFull) {
  service_config cfg = small_service(1);
  cfg.shard.session_queue_capacity = 2;
  pim_service svc(cfg);
  svc.start();
  service_client client(svc);
  const bits size = 1'000;
  auto v = client.allocate(size, 3);

  svc.pause();  // freeze the worker so the queue cannot drain
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    auto f = client.try_submit(
        runtime::make_bulk_task(dram::bulk_op::and_op, v[0], &v[1], v[2]));
    f ? ++accepted : ++rejected;
  }
  EXPECT_EQ(accepted, 2);  // exactly the queue capacity
  EXPECT_EQ(rejected, 4);
  EXPECT_EQ(svc.stats().requests_rejected, 4u);

  svc.resume();
  client.wait_all();  // the admitted requests still complete
  const service_stats stats = svc.stats();
  EXPECT_EQ(stats.tasks_submitted, 2u);
  svc.stop();
}

TEST(ServiceAdmissionTest, QueuesAreBoundedPerSession) {
  service_config cfg = small_service(1);
  cfg.shard.session_queue_capacity = 4;
  pim_service svc(cfg);
  svc.start();
  service_client heavy(svc);
  service_client light(svc);
  const bits size = 1'000;
  auto hv = heavy.allocate(size, 3);
  auto lv = light.allocate(size, 3);

  svc.pause();
  // The heavy tenant fills its own queue; the light tenant's separate
  // bound means it is not locked out.
  for (int i = 0; i < 8; ++i) {
    heavy.try_submit(
        runtime::make_bulk_task(dram::bulk_op::or_op, hv[0], &hv[1], hv[2]));
  }
  auto admitted = light.try_submit(
      runtime::make_bulk_task(dram::bulk_op::or_op, lv[0], &lv[1], lv[2]));
  EXPECT_TRUE(admitted.has_value());
  svc.resume();
  heavy.wait_all();
  light.wait_all();
  svc.stop();
}

TEST(ServiceAdmissionTest, StopFailsQueuedRequests) {
  service_config cfg = small_service(1);
  cfg.shard.session_queue_capacity = 8;
  pim_service svc(cfg);
  svc.start();
  service_client client(svc);
  const bits size = 1'000;
  auto v = client.allocate(size, 3);

  svc.pause();
  request_future f = client.submit(
      runtime::make_bulk_task(dram::bulk_op::and_op, v[0], &v[1], v[2]));
  svc.stop();  // never resumed: the queued request must fail, not hang
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_GE(svc.stats().requests_failed, 1u);
}

// ---------------------------------------------------------------------------
// Fair share
// ---------------------------------------------------------------------------

TEST(ServiceFairShareTest, LightTenantIsNotStarvedByHeavyBacklog) {
  service_config cfg = small_service(1);
  cfg.shard.session_queue_capacity = 64;
  pim_service svc(cfg);
  svc.start();
  service_client heavy(svc, /*weight=*/1.0);
  service_client light(svc, /*weight=*/1.0);
  const bits size = 1'000;
  auto hv = heavy.allocate(size, 3);
  auto lv = light.allocate(size, 3);
  rng gen(5);
  heavy.write(hv[0], bitvector::random(size, gen));
  heavy.write(hv[1], bitvector::random(size, gen));
  light.write(lv[0], bitvector::random(size, gen));
  light.write(lv[1], bitvector::random(size, gen));

  // Heavy queues 32 tasks first; light queues 4 afterwards. Strict
  // FIFO would finish all 32 before light's first; stride scheduling
  // must interleave them.
  svc.pause();
  std::vector<request_future> heavy_f;
  for (int i = 0; i < 32; ++i) {
    heavy_f.push_back(heavy.submit(
        runtime::make_bulk_task(dram::bulk_op::xor_op, hv[0], &hv[1], hv[2])));
  }
  std::vector<request_future> light_f;
  for (int i = 0; i < 4; ++i) {
    light_f.push_back(light.submit(
        runtime::make_bulk_task(dram::bulk_op::xor_op, lv[0], &lv[1], lv[2])));
  }
  svc.resume();
  heavy.wait_all();
  light.wait_all();

  const picoseconds light_last = light_f.back().get().report.complete_ps;
  int heavy_done_before_light = 0;
  for (const request_future& f : heavy_f) {
    if (f.get().report.complete_ps <= light_last) ++heavy_done_before_light;
  }
  // Equal weights => light's 4 tasks finish within roughly the first 8
  // completions; far fewer than half of heavy's backlog may precede
  // them.
  EXPECT_LE(heavy_done_before_light, 16);
  svc.stop();
}

// ---------------------------------------------------------------------------
// Sharded equivalence and telemetry
// ---------------------------------------------------------------------------

std::vector<synthetic_config> small_population(int clients) {
  std::vector<synthetic_config> population;
  for (int i = 0; i < clients; ++i) {
    synthetic_config c;
    c.ops = 12;
    c.groups = 2;
    c.vector_bits = 1'000;
    c.seed = static_cast<std::uint64_t>(40 + i);
    population.push_back(c);
  }
  return population;
}

TEST(ServiceEquivalenceTest, DigestsMatchAcrossShardCountsAndReference) {
  const auto population = small_population(6);

  // Reference: each client straight on its own pim_system, synchronous.
  std::vector<std::uint64_t> expected;
  for (const synthetic_config& c : population) {
    core::pim_system sys(small_system());
    expected.push_back(run_synthetic_reference(sys, c).digest);
  }

  for (int shards : {1, 3}) {
    service_config cfg = small_service(shards);
    cfg.routing = shard_routing::range;
    cfg.sessions_per_shard = 2;
    pim_service svc(cfg);
    svc.start();
    // Sequential clients: shard assignment is then deterministic.
    std::vector<std::uint64_t> digests;
    for (const synthetic_config& c : population) {
      digests.push_back(run_synthetic_client(svc, c).digest);
    }
    svc.stop();
    EXPECT_EQ(digests, expected) << "shards=" << shards;
  }
}

TEST(ServiceStatsTest, AggregatesAcrossShards) {
  service_config cfg = small_service(2);
  cfg.routing = shard_routing::range;
  cfg.sessions_per_shard = 1;
  pim_service svc(cfg);
  svc.start();
  const auto population = small_population(2);
  for (const synthetic_config& c : population) {
    run_synthetic_client(svc, c);
  }
  svc.stop();

  const service_stats stats = svc.stats();
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_EQ(stats.sessions, 2);
  // One client per shard: both shards saw work.
  EXPECT_GT(stats.shards[0].tasks_submitted, 0u);
  EXPECT_GT(stats.shards[1].tasks_submitted, 0u);
  EXPECT_EQ(stats.tasks_submitted, 24u);  // 2 clients x 12 ops
  EXPECT_EQ(stats.sched_submitted, 24u);
  EXPECT_EQ(stats.sched_completed, 24u);
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_GT(stats.output_bytes, 0u);
  EXPECT_GT(stats.makespan_ps, 0);
  EXPECT_GT(stats.aggregate_gbps(), 0.0);

  // The JSON emission covers the whole tree without throwing.
  json_writer json;
  json.begin_object();
  stats.to_json(json);
  json.end_object();
  EXPECT_NE(json.str().find("\"shards\""), std::string::npos);
  EXPECT_NE(json.str().find("\"aggregate_gbps\""), std::string::npos);
}

TEST(ServiceSessionTest, SessionsSpreadAndClientsSeeTheirShard) {
  service_config cfg = small_service(4);
  cfg.routing = shard_routing::range;
  cfg.sessions_per_shard = 2;
  pim_service svc(cfg);
  svc.start();
  std::vector<service_client> clients;
  clients.reserve(8);
  std::vector<int> per_shard(4, 0);
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back(svc);
    ++per_shard[static_cast<std::size_t>(clients.back().shard_index())];
  }
  for (int count : per_shard) EXPECT_EQ(count, 2);
  svc.stop();
}

}  // namespace
}  // namespace pim::service
