// Tests for the sharded PIM service front-end: session routing, the
// client request API, admission control (bounded queues +
// backpressure), fair-share popping, shutdown semantics, and
// bit-for-bit equivalence across shard counts.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/digest.h"
#include "service/synthetic.h"

namespace pim::service {
namespace {

core::pim_system_config small_system() {
  core::pim_system_config cfg;
  cfg.org.channels = 1;
  cfg.org.ranks = 1;
  cfg.org.banks = 4;
  cfg.org.subarrays = 4;
  cfg.org.rows = 256;
  cfg.org.columns = 8;
  return cfg;
}

service_config small_service(int shards) {
  service_config cfg;
  cfg.shards = shards;
  cfg.system = small_system();
  return cfg;
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, RangeRoutingMakesContiguousBlocks) {
  shard_router router(4, shard_routing::range, /*keys_per_shard=*/2);
  EXPECT_EQ(router.route(0), 0);
  EXPECT_EQ(router.route(1), 0);
  EXPECT_EQ(router.route(2), 1);
  EXPECT_EQ(router.route(5), 2);
  EXPECT_EQ(router.route(7), 3);
}

TEST(ShardRouterTest, RangeOverflowWrapsRoundRobin) {
  // Keys past shards * keys_per_shard used to clamp onto the last
  // shard, silently hot-spotting it as the population grew; they must
  // wrap round-robin across all shards instead.
  shard_router router(4, shard_routing::range, /*keys_per_shard=*/2);
  // Boundary: the last in-range key vs the first overflow key.
  EXPECT_EQ(router.route(7), 3);
  EXPECT_EQ(router.route(8), 0);
  EXPECT_EQ(router.route(9), 1);
  EXPECT_EQ(router.route(10), 2);
  EXPECT_EQ(router.route(11), 3);
  EXPECT_EQ(router.route(12), 0);  // second wrap
  EXPECT_EQ(router.route(1000), 0);  // (1000 - 8) % 4
  EXPECT_EQ(router.route(1001), 1);

  // A growing population stays balanced: over any large key range the
  // spread between the fullest and emptiest shard is bounded by one
  // block, not linear in the overflow.
  std::vector<int> hits(4, 0);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    ++hits[static_cast<std::size_t>(router.route(key))];
  }
  const auto [lo, hi] = std::minmax_element(hits.begin(), hits.end());
  EXPECT_LE(*hi - *lo, 2);

  // Single-shard degenerate case: everything routes to shard 0.
  shard_router one(1, shard_routing::range, /*keys_per_shard=*/4);
  EXPECT_EQ(one.route(3), 0);
  EXPECT_EQ(one.route(4), 0);
  EXPECT_EQ(one.route(12345), 0);
}

TEST(ShardRouterTest, HashRoutingCoversAllShards) {
  shard_router router(4, shard_routing::hash);
  std::vector<int> hits(4, 0);
  for (std::uint64_t key = 0; key < 64; ++key) {
    const int s = router.route(key);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    ++hits[static_cast<std::size_t>(s)];
  }
  for (int h : hits) EXPECT_GT(h, 0);  // no empty shard over 64 keys
}

TEST(ShardRouterTest, RejectsInvalidConfig) {
  EXPECT_THROW(shard_router(0), std::invalid_argument);
  EXPECT_THROW(shard_router(2, shard_routing::range, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Client API basics
// ---------------------------------------------------------------------------

TEST(ServiceClientTest, ExecutesBulkOpsCorrectly) {
  pim_service svc(small_service(1));
  svc.start();
  service_client client(svc);

  const bits size = 2'000;
  auto v = client.allocate(size, 3);
  ASSERT_EQ(v.size(), 3u);
  rng gen(7);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  client.write(v[0], a);
  client.write(v[1], b);

  request_future f = client.submit_bulk(dram::bulk_op::xor_op, v[0], &v[1],
                                        v[2]);
  const request_result& r = f.get();
  EXPECT_EQ(r.report.kind, runtime::task_kind::bulk_bool);
  EXPECT_GT(r.report.complete_ps, r.report.submit_ps);
  EXPECT_EQ(client.read(v[2]), a ^ b);

  svc.stop();
}

TEST(ServiceClientTest, ChainedOpsPreserveProgramOrder) {
  pim_service svc(small_service(1));
  svc.start();
  service_client client(svc);

  const bits size = 1'500;
  auto v = client.allocate(size, 4);
  rng gen(11);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  client.write(v[0], a);
  client.write(v[1], b);

  client.submit_bulk(dram::bulk_op::and_op, v[0], &v[1], v[2]);
  client.submit_bulk(dram::bulk_op::or_op, v[2], &v[0], v[3]);
  client.submit_bulk(dram::bulk_op::xor_op, v[0], &v[1], v[2]);  // WAR
  client.wait_all();

  EXPECT_EQ(client.read(v[2]), a ^ b);
  EXPECT_EQ(client.read(v[3]), (a & b) | a);
  svc.stop();
}

TEST(ServiceClientTest, InvalidTaskFailsItsFutureOnly) {
  pim_service svc(small_service(1));
  svc.start();
  service_client client(svc);

  const bits size = 1'000;
  auto v = client.allocate(size, 3);
  // Forced misroute: a row copy on the Ambit backend is invalid and
  // must fail the request's future, not wedge the shard.
  runtime::pim_task bad;
  bad.payload = runtime::row_copy_args{v[0].rows[0], v[1].rows[0], true};
  bad.forced_backend = runtime::backend_kind::ambit;
  request_future f = client.submit(std::move(bad));
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_THROW(client.wait_all(), std::runtime_error);

  // The shard is still serviceable afterwards.
  rng gen(3);
  const bitvector a = bitvector::random(size, gen);
  client.write(v[0], a);
  client.submit_bulk(dram::bulk_op::not_op, v[0], nullptr, v[2]);
  client.wait_all();
  EXPECT_EQ(client.read(v[2]), ~a);
  svc.stop();
}

// ---------------------------------------------------------------------------
// Admission control and backpressure
// ---------------------------------------------------------------------------

TEST(ServiceAdmissionTest, TrySubmitRejectsWhenQueueFull) {
  service_config cfg = small_service(1);
  cfg.shard.session_queue_capacity = 2;
  pim_service svc(cfg);
  svc.start();
  service_client client(svc);
  const bits size = 1'000;
  auto v = client.allocate(size, 3);

  svc.pause();  // freeze the worker so the queue cannot drain
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    auto f = client.try_submit(
        runtime::make_bulk_task(dram::bulk_op::and_op, v[0], &v[1], v[2]));
    f ? ++accepted : ++rejected;
  }
  EXPECT_EQ(accepted, 2);  // exactly the queue capacity
  EXPECT_EQ(rejected, 4);
  EXPECT_EQ(svc.stats().requests_rejected, 4u);

  svc.resume();
  client.wait_all();  // the admitted requests still complete
  const service_stats stats = svc.stats();
  EXPECT_EQ(stats.tasks_submitted, 2u);
  svc.stop();
}

TEST(ServiceAdmissionTest, QueuesAreBoundedPerSession) {
  service_config cfg = small_service(1);
  cfg.shard.session_queue_capacity = 4;
  pim_service svc(cfg);
  svc.start();
  service_client heavy(svc);
  service_client light(svc);
  const bits size = 1'000;
  auto hv = heavy.allocate(size, 3);
  auto lv = light.allocate(size, 3);

  svc.pause();
  // The heavy tenant fills its own queue; the light tenant's separate
  // bound means it is not locked out.
  for (int i = 0; i < 8; ++i) {
    heavy.try_submit(
        runtime::make_bulk_task(dram::bulk_op::or_op, hv[0], &hv[1], hv[2]));
  }
  auto admitted = light.try_submit(
      runtime::make_bulk_task(dram::bulk_op::or_op, lv[0], &lv[1], lv[2]));
  EXPECT_TRUE(admitted.has_value());
  svc.resume();
  heavy.wait_all();
  light.wait_all();
  svc.stop();
}

TEST(ServiceAdmissionTest, StopFailsQueuedRequests) {
  service_config cfg = small_service(1);
  cfg.shard.session_queue_capacity = 8;
  pim_service svc(cfg);
  svc.start();
  service_client client(svc);
  const bits size = 1'000;
  auto v = client.allocate(size, 3);

  svc.pause();
  request_future f = client.submit(
      runtime::make_bulk_task(dram::bulk_op::and_op, v[0], &v[1], v[2]));
  svc.stop();  // never resumed: the queued request must fail, not hang
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_GE(svc.stats().requests_failed, 1u);
}

// ---------------------------------------------------------------------------
// Fair share
// ---------------------------------------------------------------------------

TEST(ServiceFairShareTest, LightTenantIsNotStarvedByHeavyBacklog) {
  service_config cfg = small_service(1);
  cfg.shard.session_queue_capacity = 64;
  pim_service svc(cfg);
  svc.start();
  service_client heavy(svc, /*weight=*/1.0);
  service_client light(svc, /*weight=*/1.0);
  const bits size = 1'000;
  auto hv = heavy.allocate(size, 3);
  auto lv = light.allocate(size, 3);
  rng gen(5);
  heavy.write(hv[0], bitvector::random(size, gen));
  heavy.write(hv[1], bitvector::random(size, gen));
  light.write(lv[0], bitvector::random(size, gen));
  light.write(lv[1], bitvector::random(size, gen));

  // Heavy queues 32 tasks first; light queues 4 afterwards. Strict
  // FIFO would finish all 32 before light's first; stride scheduling
  // must interleave them.
  svc.pause();
  std::vector<request_future> heavy_f;
  for (int i = 0; i < 32; ++i) {
    heavy_f.push_back(heavy.submit(
        runtime::make_bulk_task(dram::bulk_op::xor_op, hv[0], &hv[1], hv[2])));
  }
  std::vector<request_future> light_f;
  for (int i = 0; i < 4; ++i) {
    light_f.push_back(light.submit(
        runtime::make_bulk_task(dram::bulk_op::xor_op, lv[0], &lv[1], lv[2])));
  }
  svc.resume();
  heavy.wait_all();
  light.wait_all();

  const picoseconds light_last = light_f.back().get().report.complete_ps;
  int heavy_done_before_light = 0;
  for (const request_future& f : heavy_f) {
    if (f.get().report.complete_ps <= light_last) ++heavy_done_before_light;
  }
  // Equal weights => light's 4 tasks finish within roughly the first 8
  // completions; far fewer than half of heavy's backlog may precede
  // them.
  EXPECT_LE(heavy_done_before_light, 16);
  svc.stop();
}

// ---------------------------------------------------------------------------
// Sharded equivalence and telemetry
// ---------------------------------------------------------------------------

std::vector<synthetic_config> small_population(int clients) {
  std::vector<synthetic_config> population;
  for (int i = 0; i < clients; ++i) {
    synthetic_config c;
    c.ops = 12;
    c.groups = 2;
    c.vector_bits = 1'000;
    c.seed = static_cast<std::uint64_t>(40 + i);
    population.push_back(c);
  }
  return population;
}

TEST(ServiceEquivalenceTest, DigestsMatchAcrossShardCountsAndReference) {
  const auto population = small_population(6);

  // Reference: each client straight on its own pim_system, synchronous.
  std::vector<std::uint64_t> expected;
  for (const synthetic_config& c : population) {
    core::pim_system sys(small_system());
    expected.push_back(run_synthetic_reference(sys, c).digest);
  }

  for (int shards : {1, 3}) {
    service_config cfg = small_service(shards);
    cfg.routing = shard_routing::range;
    cfg.sessions_per_shard = 2;
    pim_service svc(cfg);
    svc.start();
    // Sequential clients: shard assignment is then deterministic.
    std::vector<std::uint64_t> digests;
    for (const synthetic_config& c : population) {
      digests.push_back(run_synthetic_client(svc, c).digest);
    }
    svc.stop();
    EXPECT_EQ(digests, expected) << "shards=" << shards;
  }
}

TEST(ServiceStatsTest, AggregatesAcrossShards) {
  service_config cfg = small_service(2);
  cfg.routing = shard_routing::range;
  cfg.sessions_per_shard = 1;
  pim_service svc(cfg);
  svc.start();
  const auto population = small_population(2);
  for (const synthetic_config& c : population) {
    run_synthetic_client(svc, c);
  }
  svc.stop();

  const service_stats stats = svc.stats();
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_EQ(stats.sessions, 2);
  // One client per shard: both shards saw work.
  EXPECT_GT(stats.shards[0].tasks_submitted, 0u);
  EXPECT_GT(stats.shards[1].tasks_submitted, 0u);
  EXPECT_EQ(stats.tasks_submitted, 24u);  // 2 clients x 12 ops
  EXPECT_EQ(stats.sched_submitted, 24u);
  EXPECT_EQ(stats.sched_completed, 24u);
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_GT(stats.output_bytes, 0u);
  EXPECT_GT(stats.makespan_ps, 0);
  EXPECT_GT(stats.aggregate_gbps(), 0.0);

  // The JSON emission covers the whole tree without throwing.
  json_writer json;
  json.begin_object();
  stats.to_json(json);
  json.end_object();
  EXPECT_NE(json.str().find("\"shards\""), std::string::npos);
  EXPECT_NE(json.str().find("\"aggregate_gbps\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Row-granular hazard drains (the old code drained the whole runtime on
// every allocate/write/read, serializing all sessions' compute behind
// any one session's metadata ops)
// ---------------------------------------------------------------------------

TEST(ServiceHazardTest, IndependentSessionsDoNotSerializeOnMetadataOps) {
  service_config cfg = small_service(1);
  pim_service svc(cfg);
  svc.start();
  service_client compute(svc);
  service_client meta(svc);

  const bits size = 1'000;
  // Independent groups stripe across banks, so hazard-free tasks can
  // genuinely overlap.
  std::vector<std::vector<dram::bulk_vector>> groups;
  for (int g = 0; g < 4; ++g) groups.push_back(compute.allocate(size, 3));
  auto mv = meta.allocate(size, 1);
  rng gen(9);
  std::vector<bitvector> a, b;
  for (auto& g : groups) {
    a.push_back(bitvector::random(size, gen));
    b.push_back(bitvector::random(size, gen));
    compute.write(g[0], a.back());
    compute.write(g[1], b.back());
  }
  const bitvector md = bitvector::random(size, gen);

  // Queue everything while paused so the pop order is deterministic:
  // stride popping interleaves meta's writes between compute's tasks.
  svc.pause();
  std::vector<request_future> fs;
  for (int g = 0; g < 4; ++g) {
    fs.push_back(compute.submit_bulk(dram::bulk_op::xor_op, groups[g][0],
                                     &groups[g][1], groups[g][2]));
  }
  std::vector<request_future> ws;
  for (int i = 0; i < 4; ++i) {
    request r;
    r.session = meta.id();
    r.payload = write_args{mv[0], md};
    ws.push_back(svc.submit(std::move(r)));
  }
  svc.resume();
  compute.wait_all();
  for (const request_future& w : ws) w.get();

  // With the old always-drain behavior the interleaved writes forced
  // every compute task to finish alone before the next was submitted:
  // no two tasks' [start, complete) windows could ever overlap. With
  // hazard-scoped drains the writes touch unrelated rows and all four
  // tasks run concurrently.
  int overlapping = 0;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    for (std::size_t j = i + 1; j < fs.size(); ++j) {
      const runtime::task_report& x = fs[i].get().report;
      const runtime::task_report& y = fs[j].get().report;
      if (x.start_ps < y.complete_ps && y.start_ps < x.complete_ps) {
        ++overlapping;
      }
    }
  }
  EXPECT_GT(overlapping, 0);
  for (int g = 0; g < 4; ++g) {
    EXPECT_EQ(compute.read(groups[g][2]),
              a[static_cast<std::size_t>(g)] ^ b[static_cast<std::size_t>(g)]);
  }
  EXPECT_EQ(meta.read(mv[0]), md);
  svc.stop();
  // The unrelated metadata ops never drained...
  EXPECT_EQ(svc.stats().shards[0].hazard_drains, 0u);
}

TEST(ServiceHazardTest, ReadOfPendingResultStillDrains) {
  service_config cfg = small_service(1);
  pim_service svc(cfg);
  svc.start();
  service_client client(svc);
  const bits size = 1'000;
  auto v = client.allocate(size, 3);
  rng gen(21);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  client.write(v[0], a);
  client.write(v[1], b);
  // Queue the op and the read back-to-back while paused: the worker
  // then provably executes the read while the task is still in flight,
  // and the hazard drain must make it observe the completed result.
  svc.pause();
  client.submit_bulk(dram::bulk_op::nand_op, v[0], &v[1], v[2]);
  request r;
  r.session = client.id();
  r.payload = read_args{v[2]};
  request_future rf = svc.submit(std::move(r));
  svc.resume();
  EXPECT_EQ(rf.get().data, ~(a & b));
  client.wait_all();
  svc.stop();
  EXPECT_GE(svc.stats().hazard_drains, 1u);
}

// ---------------------------------------------------------------------------
// Cross-shard plans
// ---------------------------------------------------------------------------

service_config two_shard_range() {
  service_config cfg = small_service(2);
  cfg.routing = shard_routing::range;
  cfg.sessions_per_shard = 1;
  return cfg;
}

TEST(ServiceCrossShardTest, CrossShardOpsMatchFunctionalReference) {
  pim_service svc(two_shard_range());
  svc.start();
  service_client c0(svc);
  service_client c1(svc);
  ASSERT_EQ(c0.shard_index(), 0);
  ASSERT_EQ(c1.shard_index(), 1);

  const bits size = 1'500;
  auto v0 = c0.allocate(size, 2);  // a, and a destination for the unary op
  auto v1 = c1.allocate(size, 2);  // b, d
  rng gen(31);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  c0.write(v0[0], a);
  c1.write(v1[0], b);

  // Binary op across shards: a lives on shard 0, b and d on shard 1.
  const shared_vector sb{c1.id(), v1[0]};
  const shared_vector sd{c1.id(), v1[1]};
  request_future f =
      c0.submit_shared(dram::bulk_op::xor_op, c0.share(v0[0]), &sb, sd);
  f.get();
  EXPECT_EQ(c1.read(v1[1]), a ^ b);

  // Unary op across shards: source on shard 1, destination on shard 0.
  request_future g =
      c0.submit_shared(dram::bulk_op::not_op, sb, nullptr, c0.share(v0[1]));
  g.get();
  EXPECT_EQ(c0.read(v0[1]), ~b);

  // Chained: a cross-shard result feeds a local op (hazard ordering
  // across the plan's write-back).
  c1.submit_bulk(dram::bulk_op::and_op, v1[1], &v1[0], v1[1]);
  c1.wait_all();
  EXPECT_EQ(c1.read(v1[1]), (a ^ b) & b);

  svc.stop();
  const service_stats stats = svc.stats();
  EXPECT_EQ(stats.cross_plans, 2u);
  EXPECT_GT(stats.staged_bytes, 0u);
  EXPECT_GT(stats.exported_bytes, 0u);
  EXPECT_EQ(stats.requests_failed, 0u);
}

TEST(ServiceCrossShardTest, PlannerPicksShardMinimizingBytesMoved) {
  pim_service svc(two_shard_range());
  svc.start();
  service_client c0(svc);
  service_client c1(svc);
  const bits size = 4'000;
  auto v0 = c0.allocate(size, 2);  // a, b on shard 0
  auto v1 = c1.allocate(size, 1);  // d on shard 1
  rng gen(47);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  c0.write(v0[0], a);
  c0.write(v0[1], b);

  // Two inputs on shard 0 vs one output on shard 1: moving d's bytes
  // (write-back) is cheaper than moving a+b, so the plan must execute
  // on shard 0.
  const shared_vector sa{c0.id(), v0[0]};
  const shared_vector sb{c0.id(), v0[1]};
  c1.submit_shared(dram::bulk_op::or_op, sa, &sb, c1.share(v1[0])).get();
  EXPECT_EQ(c1.read(v1[0]), a | b);

  svc.stop();
  const service_stats stats = svc.stats();
  EXPECT_EQ(stats.shards[0].cross_plans, 1u);
  EXPECT_EQ(stats.shards[1].cross_plans, 0u);
  // The write-back landed (and was priced) on d's shard.
  EXPECT_GE(stats.shards[1].staged_bytes, static_cast<bytes>(size / 8));
  // Nothing was exported from shard 1 — its only involvement is the
  // landing.
  EXPECT_EQ(stats.shards[1].exported_bytes, 0u);
}

TEST(ServiceCrossShardTest, SingleOwnerSharedSubmitTakesFastPath) {
  pim_service svc(two_shard_range());
  svc.start();
  service_client c0(svc);
  service_client c1(svc);
  const bits size = 1'000;
  auto v1 = c1.allocate(size, 3);
  rng gen(53);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  c1.write(v1[0], a);
  c1.write(v1[1], b);
  // All operands owned by c1: no staging, direct run on shard 1 even
  // though the issuer lives on shard 0.
  const shared_vector sa{c1.id(), v1[0]};
  const shared_vector sb{c1.id(), v1[1]};
  const shared_vector sd{c1.id(), v1[2]};
  c0.submit_shared(dram::bulk_op::and_op, sa, &sb, sd).get();
  EXPECT_EQ(c1.read(v1[2]), a & b);
  svc.stop();
  EXPECT_EQ(svc.stats().cross_plans, 0u);
}

// ---------------------------------------------------------------------------
// Session migration and rebalancing
// ---------------------------------------------------------------------------

TEST(ServiceMigrationTest, MigrationPreservesDataOrderingAndHandles) {
  pim_service svc(two_shard_range());
  svc.start();
  service_client c(svc);
  ASSERT_EQ(c.shard_index(), 0);
  const bits size = 2'000;
  auto v = c.allocate(size, 3);
  rng gen(61);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  c.write(v[0], a);
  c.write(v[1], b);

  // An op in flight (or queued) when the migration starts must land
  // before the post-migration op, on the new shard, same handles.
  c.submit_bulk(dram::bulk_op::and_op, v[0], &v[1], v[2]);
  svc.migrate_session(c.id(), 1);
  EXPECT_EQ(c.shard_index(), 1);
  c.submit_bulk(dram::bulk_op::xor_op, v[2], &v[0], v[2]);  // RAW chain
  c.wait_all();
  EXPECT_EQ(c.read(v[2]), (a & b) ^ a);

  // Allocation after migration lands on the new shard and coexists
  // with migrated vectors (one op per co-located group, as always).
  auto w = c.allocate(size, 3);
  c.write(w[0], b);
  c.write(w[1], a);
  c.submit_bulk(dram::bulk_op::or_op, w[0], &w[1], w[2]);
  c.wait_all();
  EXPECT_EQ(c.read(w[2]), b | a);

  // Migrate back: handles still valid.
  svc.migrate_session(c.id(), 0);
  EXPECT_EQ(c.shard_index(), 0);
  EXPECT_EQ(c.read(v[2]), (a & b) ^ a);
  EXPECT_EQ(c.read(w[2]), b | a);

  svc.stop();
  const service_stats stats = svc.stats();
  EXPECT_EQ(stats.migrations, 2u);
  EXPECT_EQ(stats.requests_failed, 0u);
}

TEST(ServiceMigrationTest, MigratedSessionMatchesReferenceDigest) {
  synthetic_config sc;
  sc.ops = 10;
  sc.groups = 2;
  sc.vector_bits = 1'200;
  sc.seed = 77;

  core::pim_system reference(small_system());
  const std::uint64_t expected =
      run_synthetic_reference(reference, sc).digest;

  pim_service svc(two_shard_range());
  svc.start();
  service_client c(svc);
  // Interleave the chain with migrations: same digest as never moving.
  std::vector<dram::bulk_vector> v;
  for (int g = 0; g < sc.groups; ++g) {
    auto group = c.allocate(sc.vector_bits, synthetic_group_vectors);
    v.insert(v.end(), group.begin(), group.end());
  }
  rng data(sc.seed ^ 0xa5a5a5a5a5a5a5a5ull);
  for (const dram::bulk_vector& vec : v) {
    c.write(vec, bitvector::random(vec.size, data));
  }
  int i = 0;
  for (const synthetic_op& op : make_synthetic_ops(sc)) {
    const dram::bulk_vector* b =
        op.b < 0 ? nullptr : &v[static_cast<std::size_t>(op.b)];
    c.submit_bulk(op.op, v[static_cast<std::size_t>(op.a)], b,
                  v[static_cast<std::size_t>(op.d)]);
    if (++i % 3 == 0) svc.migrate_session(c.id(), i % 2);
  }
  EXPECT_EQ(c.digest(), expected);
  svc.stop();
}

TEST(ServiceRebalanceTest, DrainsHotSpottedShard) {
  // Route every session onto shard 0 (range routing with a huge block),
  // then let the rebalancer spread the backlogged ones. Migration
  // needs live workers (its captures flow through the shard queues),
  // so the backlog is built under pause but rebalance runs after
  // resume, polled while the hot shard chews through it.
  service_config cfg = small_service(3);
  cfg.routing = shard_routing::range;
  cfg.sessions_per_shard = 64;
  cfg.shard.session_queue_capacity = 64;
  pim_service svc(cfg);
  svc.start();
  std::vector<std::unique_ptr<service_client>> clients;
  // 16-row vectors x 64 ops x 5 tenants (more tenants than shards: the
  // oversubscription the policy acts on): a backlog whose simulated
  // drain takes long enough (tens of ms wall) that the skew is
  // reliably observable after resume.
  const int tenants = 5;
  const bits size = 64'000;
  rng gen(83);
  std::vector<std::vector<dram::bulk_vector>> vs;
  for (int i = 0; i < tenants; ++i) {
    clients.push_back(std::make_unique<service_client>(svc));
    ASSERT_EQ(clients.back()->shard_index(), 0);
    vs.push_back(clients.back()->allocate(size, 3));
    clients.back()->write(vs.back()[0], bitvector::random(size, gen));
    clients.back()->write(vs.back()[1], bitvector::random(size, gen));
  }
  svc.pause();
  for (int i = 0; i < tenants; ++i) {
    for (int k = 0; k < 64; ++k) {
      clients[static_cast<std::size_t>(i)]->submit_bulk(
          dram::bulk_op::xor_op, vs[static_cast<std::size_t>(i)][0],
          &vs[static_cast<std::size_t>(i)][1],
          vs[static_cast<std::size_t>(i)][2]);
    }
  }
  svc.resume();
  int moved = 0;
  for (int tries = 0; tries < 1000 && moved == 0; ++tries) {
    moved = svc.rebalance(/*threshold=*/1.2);
  }
  EXPECT_GE(moved, 1);
  // Rebalancing moved sessions (and their backlogs) off the hot shard.
  std::vector<int> homes(tenants);
  for (int i = 0; i < tenants; ++i) {
    homes[static_cast<std::size_t>(i)] =
        clients[static_cast<std::size_t>(i)]->shard_index();
  }
  EXPECT_TRUE(std::any_of(homes.begin(), homes.end(),
                          [](int h) { return h != 0; }));
  for (auto& c : clients) c->wait_all();
  svc.stop();
  EXPECT_EQ(svc.stats().requests_failed, 0u);
  EXPECT_GE(svc.stats().migrations, 1u);
}

TEST(ServiceMigrationTest, RepeatedMigrationDoesNotExhaustCapacity) {
  // Regression for the migrated-row capacity leak: before the Ambit
  // allocator grew a free list, every migrate-away left the source
  // shard's physical rows allocated forever, so ping-ponging one
  // session between two shards ran each shard out of subarray capacity
  // after a few dozen moves. The total rows cycled through each shard
  // here is several times its capacity — only reclaim-on-forget can
  // survive it.
  const core::pim_system_config sys_cfg = small_system();
  // Capacity per shard: channels*ranks*banks*subarrays stripe units x
  // data rows each. small_system: 16 units x 54 rows = 864 data rows.
  pim_service svc(two_shard_range());
  svc.start();
  service_client c(svc);
  ASSERT_EQ(c.shard_index(), 0);

  const bits size = 6 * sys_cfg.org.row_bits();  // 6 rows per vector
  auto v = c.allocate(size, 3);                  // one group: 18 rows
  rng gen(29);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  c.write(v[0], a);
  c.write(v[1], b);
  c.submit_bulk(dram::bulk_op::xor_op, v[0], &v[1], v[2]);
  c.wait_all();

  // 60 round trips x 18 rows = 1080 rows through each shard's
  // allocator — beyond the 864-row capacity unless freed rows are
  // recycled.
  for (int trip = 0; trip < 60; ++trip) {
    svc.migrate_session(c.id(), 1);
    svc.migrate_session(c.id(), 0);
  }
  // Contents and handles survived every move.
  EXPECT_EQ(c.read(v[2]), a ^ b);
  c.submit_bulk(dram::bulk_op::and_op, v[0], &v[1], v[2]);
  c.wait_all();
  EXPECT_EQ(c.read(v[2]), a & b);
  svc.stop();
  EXPECT_EQ(svc.stats().migrations, 120u);
  EXPECT_EQ(svc.stats().requests_failed, 0u);
}

TEST(ServiceStatsTest, TracksPerSessionLatencyPercentiles) {
  pim_service svc(small_service(2));
  svc.start();
  service_client c1(svc);
  service_client c2(svc);
  const bits size = 2'000;
  rng gen(31);
  for (service_client* c : {&c1, &c2}) {
    auto v = c->allocate(size, 3);
    c->write(v[0], bitvector::random(size, gen));
    c->write(v[1], bitvector::random(size, gen));
    for (int i = 0; i < 8; ++i) {
      c->submit_bulk(dram::bulk_op::or_op, v[0], &v[1], v[2]);
    }
    c->wait_all();
  }
  svc.stop();

  const service_stats stats = svc.stats();
  // Every client-visible request (allocate + 2 writes + 8 submits +
  // reads from wait_all... at least 11 per session) charged a latency
  // sample to its session.
  ASSERT_EQ(stats.session_latency.size(), 2u);
  for (const session_id id : {c1.id(), c2.id()}) {
    auto it = stats.session_latency.find(id);
    ASSERT_NE(it, stats.session_latency.end());
    const latency_stats s = it->second.summary();
    EXPECT_GE(s.count, 11u);
    EXPECT_GT(s.p50_us, 0.0);
    EXPECT_LE(s.p50_us, s.p95_us);
    EXPECT_LE(s.p95_us, s.p99_us);
  }
  // The service-wide histogram folds both sessions together.
  EXPECT_EQ(stats.latency.count(),
            stats.session_latency.at(c1.id()).count() +
                stats.session_latency.at(c2.id()).count());

  // And the telemetry document carries the percentiles.
  json_writer json;
  json.begin_object();
  stats.to_json(json);
  json.end_object();
  EXPECT_NE(json.str().find("\"latency\""), std::string::npos);
  EXPECT_NE(json.str().find("\"session_latency\""), std::string::npos);
  EXPECT_NE(json.str().find("\"p99_us\""), std::string::npos);
}

TEST(ServiceSessionTest, SessionsSpreadAndClientsSeeTheirShard) {
  service_config cfg = small_service(4);
  cfg.routing = shard_routing::range;
  cfg.sessions_per_shard = 2;
  pim_service svc(cfg);
  svc.start();
  std::vector<service_client> clients;
  clients.reserve(8);
  std::vector<int> per_shard(4, 0);
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back(svc);
    ++per_shard[static_cast<std::size_t>(clients.back().shard_index())];
  }
  for (int count : per_shard) EXPECT_EQ(count, 2);
  svc.stop();
}

}  // namespace
}  // namespace pim::service
