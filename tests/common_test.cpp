// Unit tests for the foundation library (src/common).
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/bitvector.h"
#include "common/config.h"
#include "common/histogram.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace pim {
namespace {

// ---------------------------------------------------------------------------
// bitvector
// ---------------------------------------------------------------------------

TEST(BitvectorTest, DefaultIsEmpty) {
  bitvector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
}

TEST(BitvectorTest, ConstructAllZeros) {
  bitvector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitvectorTest, ConstructAllOnes) {
  bitvector v(130, true);
  EXPECT_TRUE(v.all());
  EXPECT_EQ(v.popcount(), 130u);
}

TEST(BitvectorTest, SetAndGet) {
  bitvector v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
}

TEST(BitvectorTest, FromToStringRoundTrip) {
  const std::string text = "1011001110001";
  bitvector v = bitvector::from_string(text);
  EXPECT_EQ(v.size(), text.size());
  EXPECT_EQ(v.to_string(), text);
}

TEST(BitvectorTest, FromStringRejectsBadChars) {
  EXPECT_THROW(bitvector::from_string("10x1"), std::invalid_argument);
}

TEST(BitvectorTest, BooleanOperators) {
  bitvector a = bitvector::from_string("1100");
  bitvector b = bitvector::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "0011");
}

TEST(BitvectorTest, OperatorsRejectSizeMismatch) {
  bitvector a(10);
  bitvector b(11);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(BitvectorTest, InvertKeepsPaddingClean) {
  bitvector v(70);  // partial last word
  v.invert();
  EXPECT_TRUE(v.all());
  EXPECT_EQ(v.popcount(), 70u);
}

TEST(BitvectorTest, MajorityTruthTable) {
  bitvector a = bitvector::from_string("00001111");
  bitvector b = bitvector::from_string("00110011");
  bitvector c = bitvector::from_string("01010101");
  EXPECT_EQ(bitvector::majority(a, b, c).to_string(), "00010111");
}

TEST(BitvectorTest, MajorityWithZeroIsAnd) {
  rng gen(7);
  bitvector a = bitvector::random(4096, gen);
  bitvector b = bitvector::random(4096, gen);
  bitvector zero(4096, false);
  EXPECT_EQ(bitvector::majority(a, b, zero), a & b);
}

TEST(BitvectorTest, MajorityWithOneIsOr) {
  rng gen(8);
  bitvector a = bitvector::random(4096, gen);
  bitvector b = bitvector::random(4096, gen);
  bitvector one(4096, true);
  EXPECT_EQ(bitvector::majority(a, b, one), a | b);
}

TEST(BitvectorTest, ShiftedUp) {
  bitvector v = bitvector::from_string("10010000");
  EXPECT_EQ(v.shifted_up(2).to_string(), "00100100");
  EXPECT_EQ(v.shifted_up(0), v);
  EXPECT_TRUE(v.shifted_up(8).none());
  EXPECT_TRUE(v.shifted_up(100).none());
}

TEST(BitvectorTest, ShiftedUpAcrossWords) {
  bitvector v(130);
  v.set(0, true);
  bitvector s = v.shifted_up(128);
  EXPECT_TRUE(s.get(128));
  EXPECT_EQ(s.popcount(), 1u);
}

TEST(BitvectorTest, ResizeGrowZero) {
  bitvector v(10, true);
  v.resize(80);
  EXPECT_EQ(v.popcount(), 10u);
  EXPECT_FALSE(v.get(79));
}

TEST(BitvectorTest, ResizeGrowOnes) {
  bitvector v(10);
  v.resize(80, true);
  EXPECT_EQ(v.popcount(), 70u);
  EXPECT_TRUE(v.get(10));
  EXPECT_TRUE(v.get(79));
  EXPECT_FALSE(v.get(9));
}

TEST(BitvectorTest, RandomDensity) {
  rng gen(42);
  bitvector v = bitvector::random(100000, gen, 0.1);
  const double density =
      static_cast<double>(v.popcount()) / static_cast<double>(v.size());
  EXPECT_NEAR(density, 0.1, 0.01);
}

TEST(BitvectorTest, WordAccessMasksPadding) {
  bitvector v(65);
  v.set_word(1, ~std::uint64_t{0});
  EXPECT_EQ(v.popcount(), 1u);  // only bit 64 is inside the vector
  EXPECT_TRUE(v.get(64));
}

// De Morgan's law as a property over random vectors.
class BitvectorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitvectorPropertyTest, DeMorgan) {
  rng gen(GetParam());
  bitvector a = bitvector::random(777, gen);
  bitvector b = bitvector::random(777, gen);
  EXPECT_EQ(~(a & b), (~a) | (~b));
  EXPECT_EQ(~(a | b), (~a) & (~b));
}

TEST_P(BitvectorPropertyTest, XorIsAddWithoutCarry) {
  rng gen(GetParam() + 1000);
  bitvector a = bitvector::random(777, gen);
  bitvector b = bitvector::random(777, gen);
  EXPECT_EQ(a ^ b, (a | b) & ~(a & b));
}

TEST_P(BitvectorPropertyTest, MajorityIsSelfDual) {
  rng gen(GetParam() + 2000);
  bitvector a = bitvector::random(777, gen);
  bitvector b = bitvector::random(777, gen);
  bitvector c = bitvector::random(777, gen);
  EXPECT_EQ(~bitvector::majority(a, b, c),
            bitvector::majority(~a, ~b, ~c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitvectorPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  rng a(123);
  rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  rng gen(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.next_below(17), 17u);
  }
  EXPECT_EQ(gen.next_below(0), 0u);
  EXPECT_EQ(gen.next_below(1), 0u);
}

TEST(RngTest, NextInInclusive) {
  rng gen(10);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = gen.next_in(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  rng gen(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = gen.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GeometricMean) {
  rng gen(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(gen.next_geometric(8.0));
  }
  // Floored exponential with mean m has expectation ~ m - 0.5.
  EXPECT_NEAR(sum / n, 7.5, 0.5);
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(CounterSetTest, AddAndGet) {
  counter_set c;
  EXPECT_EQ(c.get("x"), 0u);
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
}

TEST(CounterSetTest, Merge) {
  counter_set a;
  counter_set b;
  a.add("x", 2);
  b.add("x", 3);
  b.add("y", 1);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("y"), 1u);
}

TEST(SummaryTest, Moments) {
  summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(SummaryTest, EmptyIsZero) {
  summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(HistogramTest, GeometricBuckets) {
  geo_histogram h;
  h.record(0);    // bucket 0
  h.record(1);    // bucket 1: [1, 2)
  h.record(2);    // bucket 2: [2, 4)
  h.record(3);    // bucket 2
  h.record(1000, 2);  // bucket 10: [512, 1024)
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 2u);
}

TEST(HistogramTest, PercentileIsBucketUpperBound) {
  geo_histogram h;
  for (int i = 0; i < 100; ++i) h.record(100);  // bucket 7: [64, 128)
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 128.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 128.0);
  h.record(100000);  // bucket 17: (upper bound 131072)
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 128.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 131072.0);
}

TEST(GeometricMeanTest, Basics) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometric_mean({5.0}), 5.0);
  EXPECT_EQ(geometric_mean({}), 0.0);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// table
// ---------------------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  table t({"name", "value"});
  t.row().cell("alpha").cell(1.5);
  t.row().cell("b").cell(std::uint64_t{42});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1.50  |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 42    |"), std::string::npos);
}

TEST(TableTest, RejectsTooManyCells) {
  table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), std::logic_error);
}

TEST(TableTest, RejectsCellBeforeRow) {
  table t({"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(TableTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3 MiB");
  EXPECT_EQ(format_bytes(1ull << 31), "2 GiB");
}

// ---------------------------------------------------------------------------
// config
// ---------------------------------------------------------------------------

TEST(ConfigTest, ParsesKeyValues) {
  config c = config::from_args({"banks=8", "ratio=1.5", "fast=true"});
  EXPECT_EQ(c.get_int("banks", 0), 8);
  EXPECT_DOUBLE_EQ(c.get_double("ratio", 0.0), 1.5);
  EXPECT_TRUE(c.get_bool("fast", false));
  EXPECT_EQ(c.get_int("missing", 7), 7);
}

TEST(ConfigTest, RejectsMalformed) {
  EXPECT_THROW(config::from_args({"novalue"}), std::invalid_argument);
  EXPECT_THROW(config::from_args({"=x"}), std::invalid_argument);
}

TEST(ConfigTest, RejectsBadTypes) {
  config c = config::from_args({"x=abc"});
  EXPECT_THROW(c.get_int("x", 0), std::invalid_argument);
  EXPECT_THROW(c.get_double("x", 0.0), std::invalid_argument);
  EXPECT_THROW(c.get_bool("x", false), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// types
// ---------------------------------------------------------------------------

TEST(TypesTest, TimeConversions) {
  EXPECT_EQ(ns_to_ps(1.25), 1250);
  EXPECT_DOUBLE_EQ(ps_to_ns(2500), 2.5);
  EXPECT_EQ(mhz_to_period_ps(800.0), 1250);
}

TEST(TypesTest, Bandwidth) {
  // 16 bytes every 1000 ps = 16 GB/s.
  EXPECT_DOUBLE_EQ(gigabytes_per_second(16, 1000), 16.0);
  EXPECT_EQ(gigabytes_per_second(16, 0), 0.0);
}

// ---------------------------------------------------------------------------
// json_writer
// ---------------------------------------------------------------------------

namespace {

/// Emits one double through the writer and parses it back.
double json_round_trip(double value) {
  json_writer json;
  json.begin_object();
  json.key("v").value(value);
  json.end_object();
  const std::string& text = json.str();
  const std::size_t colon = text.find(':');
  EXPECT_NE(colon, std::string::npos);
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

TEST(JsonWriterTest, DoublesRoundTripExactly) {
  // %.6g lost precision on large cycle/byte counters, defeating
  // run-over-run comparison of BENCH_*.json; %.17g must round-trip
  // every finite double bit-exactly.
  const double values[] = {
      0.0,
      0.1,
      2.0 / 3.0,
      3.141592653589793,
      1e300,
      5e-324,                  // smallest subnormal
      123456789.123456789,
      98765432109876544.0,     // a picosecond-scale makespan counter
      9.007199254740992e15,    // 2^53: integer precision boundary
      9.007199254740994e15,
      -123456789012345.678,
  };
  for (double v : values) {
    EXPECT_EQ(json_round_trip(v), v) << "value " << v;
  }
  // Large uint64 counters passed as doubles keep their magnitude.
  const double big = static_cast<double>(
      std::uint64_t{18'446'744'073'709'551'615ull});
  EXPECT_EQ(json_round_trip(big), big);
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  json_writer json;
  json.begin_object();
  json.key("inf").value(std::numeric_limits<double>::infinity());
  json.key("nan").value(std::numeric_limits<double>::quiet_NaN());
  json.end_object();
  EXPECT_EQ(json.str(), "{\"inf\":null,\"nan\":null}");
}

}  // namespace
}  // namespace pim
