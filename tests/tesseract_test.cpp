// Tests for the Tesseract simulator and its conventional baseline.
#include <gtest/gtest.h>

#include "tesseract/baseline.h"
#include "tesseract/sim.h"

namespace pim::tesseract {
namespace {

graph::csr_graph test_graph(int scale = 13) {
  rng gen(42);
  return graph::rmat(scale, 8, gen, /*weighted=*/true, 0.45, 0.22, 0.22);
}

TEST(TesseractSimTest, RunsPagerankToConvergence) {
  const auto g = test_graph();
  graph::pagerank pr(5);
  tesseract_system tess;
  const tesseract_result r = tess.run(pr, g);
  EXPECT_EQ(r.iterations, 5);
  EXPECT_EQ(r.edges_scanned, 5 * g.num_edges());
  EXPECT_EQ(r.remote_calls, r.edges_scanned);
  EXPECT_GT(r.time, 0);
  EXPECT_GT(r.energy.total(), 0.0);
}

TEST(TesseractSimTest, CrossCubeTrafficExists) {
  const auto g = test_graph();
  graph::conductance ct;
  tesseract_system tess;
  const tesseract_result r = tess.run(ct, g);
  // With 16 cubes and hash partitioning, ~15/16 of calls cross cubes.
  EXPECT_GT(r.cross_cube_calls, r.remote_calls / 2);
  EXPECT_LE(r.cross_cube_calls, r.remote_calls);
}

TEST(TesseractSimTest, PrefetchersReduceRuntime) {
  const auto g = test_graph();
  tesseract_config with;
  tesseract_config without;
  without.prefetch = false;
  graph::pagerank pr1(3);
  graph::pagerank pr2(3);
  const auto r_with = tesseract_system(with).run(pr1, g);
  const auto r_without = tesseract_system(without).run(pr2, g);
  EXPECT_LT(r_with.time, r_without.time);
}

TEST(TesseractSimTest, HashPartitionBalancesBetterThanRange) {
  const auto g = test_graph();
  tesseract_config hash_cfg;
  tesseract_config range_cfg;
  range_cfg.partition_policy = graph::partition::policy::range;
  graph::pagerank pr1(2);
  graph::pagerank pr2(2);
  const auto r_hash = tesseract_system(hash_cfg).run(pr1, g);
  const auto r_range = tesseract_system(range_cfg).run(pr2, g);
  EXPECT_LT(r_hash.imbalance, r_range.imbalance);
}

TEST(TesseractSimTest, MoreVaultsRunFaster) {
  const auto g = test_graph();
  tesseract_config small;
  small.cubes = 4;
  tesseract_config big;
  big.cubes = 16;
  graph::pagerank pr1(3);
  graph::pagerank pr2(3);
  const auto r_small = tesseract_system(small).run(pr1, g);
  const auto r_big = tesseract_system(big).run(pr2, g);
  EXPECT_LT(r_big.time, r_small.time);
}

TEST(TesseractSimTest, EnergyComponentsPositive) {
  const auto g = test_graph();
  graph::sssp sp(0);
  const auto r = tesseract_system().run(sp, g);
  EXPECT_GT(r.energy.core_dynamic, 0.0);
  EXPECT_GT(r.energy.core_static, 0.0);
  EXPECT_GT(r.energy.dram, 0.0);
  EXPECT_GT(r.energy.network, 0.0);
}

TEST(BaselineTest, RunsAndCountsIterations) {
  const auto g = test_graph();
  graph::pagerank pr(4);
  const baseline_result r = run_baseline(pr, g);
  EXPECT_EQ(r.iterations, 4);
  EXPECT_GT(r.run.time, 0);
  EXPECT_GT(r.run.dram_bytes, 0u);
}

TEST(BaselineTest, RandomNeighborAccessesThrashCaches) {
  // With vertex state larger than the LLC, the baseline's hit rates
  // collapse — the conventional-architecture pathology Tesseract fixes.
  rng gen(7);
  const auto g = graph::rmat(17, 8, gen, true, 0.45, 0.22, 0.22);
  cpu::system_config cfg = conventional_graph_system();
  cfg.llc = cpu::cache_config{"LLC", 1 * mib, 16, 64};
  graph::pagerank pr(1);
  const baseline_result r = run_baseline(pr, g, cfg);
  EXPECT_LT(r.run.l2_hit_rate, 0.6);
  EXPECT_GT(r.run.dram_bytes, g.num_edges() * 16);
}

TEST(EndToEndTest, TesseractOutperformsConventional) {
  rng gen(11);
  // Vertex state (2 MiB) must exceed the LLC for the baseline to enter
  // its memory-bound regime, as in the full-size experiment.
  const auto g = graph::rmat(17, 8, gen, true, 0.45, 0.22, 0.22);
  cpu::system_config base_cfg = conventional_graph_system();
  base_cfg.llc = cpu::cache_config{"LLC", 512 * kib, 16, 64};
  graph::pagerank pr1(3);
  graph::pagerank pr2(3);
  const auto tess = tesseract_system().run(pr1, g);
  const auto base = run_baseline(pr2, g, base_cfg);
  const double speedup =
      static_cast<double>(base.run.time) / static_cast<double>(tess.time);
  // The full-size experiment (bench_tesseract) lands near the paper's
  // 13.8x; at this reduced scale we assert the order of magnitude.
  EXPECT_GT(speedup, 4.0);
  const double energy_reduction =
      1.0 - tess.energy.total() / base.run.energy.total();
  EXPECT_GT(energy_reduction, 0.5);
}

}  // namespace
}  // namespace pim::tesseract
