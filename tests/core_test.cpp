// Tests for the PIM runtime layer: the pim_system facade, coherence
// models, address translation, and the offload decision model.
#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/offload.h"
#include "core/pim_system.h"
#include "core/vm.h"

namespace pim::core {
namespace {

pim_system_config small_config() {
  pim_system_config cfg;
  cfg.org.channels = 1;
  cfg.org.ranks = 1;
  cfg.org.banks = 4;
  cfg.org.subarrays = 4;
  cfg.org.rows = 256;
  cfg.org.columns = 8;
  return cfg;
}

// ---------------------------------------------------------------------------
// pim_system facade
// ---------------------------------------------------------------------------

TEST(PimSystemTest, ExecuteAndReadBack) {
  pim_system sys(small_config());
  auto vecs = sys.allocate(10'000, 3);
  rng gen(1);
  const bitvector a = bitvector::random(10'000, gen);
  const bitvector b = bitvector::random(10'000, gen);
  sys.write(vecs[0], a);
  sys.write(vecs[1], b);
  const op_report r =
      sys.execute(dram::bulk_op::xor_op, vecs[0], &vecs[1], vecs[2]);
  EXPECT_EQ(sys.read(vecs[2]), a ^ b);
  EXPECT_GT(r.latency, 0);
  EXPECT_GT(r.energy, 0.0);
  EXPECT_GT(r.throughput_gbps, 0.0);
}

TEST(PimSystemTest, NotIsFasterThanXor) {
  pim_system sys(small_config());
  auto vecs = sys.allocate(50'000, 3);
  const op_report not_r =
      sys.execute(dram::bulk_op::not_op, vecs[0], nullptr, vecs[2]);
  const op_report xor_r =
      sys.execute(dram::bulk_op::xor_op, vecs[0], &vecs[1], vecs[2]);
  EXPECT_LT(not_r.latency, xor_r.latency);
  EXPECT_LT(not_r.energy, xor_r.energy);
}

TEST(PimSystemTest, RowCloneCopyAndMemset) {
  pim_system sys(small_config());
  dram::address src;
  src.row = 2;
  dram::address dst;
  dst.row = 7;
  rng gen(2);
  sys.memory().row(src) = bitvector::random(sys.org().row_bits(), gen);
  const op_report fpm = sys.copy_row(src, dst, /*same_subarray=*/true);
  EXPECT_EQ(sys.memory().row_or_zero(dst), sys.memory().row_or_zero(src));
  dram::address other;
  other.bank = 1;
  other.row = 3;
  const op_report psm = sys.copy_row(src, other, /*same_subarray=*/false);
  EXPECT_GT(psm.latency, fpm.latency);  // PSM streams column by column
  const op_report set = sys.memset_row(dst, true);
  EXPECT_TRUE(sys.memory().row_or_zero(dst).all());
  EXPECT_GT(set.latency, 0);
}

TEST(PimSystemTest, EnergyAccumulates) {
  pim_system sys(small_config());
  auto vecs = sys.allocate(10'000, 3);
  const double before = sys.energy().total();
  sys.execute(dram::bulk_op::and_op, vecs[0], &vecs[1], vecs[2]);
  EXPECT_GT(sys.energy().total(), before);
}

TEST(PimSystemTest, AsyncSubmitMatchesSyncExecute) {
  pim_system sys(small_config());
  auto vecs = sys.allocate(10'000, 4);
  rng gen(4);
  const bitvector a = bitvector::random(10'000, gen);
  const bitvector b = bitvector::random(10'000, gen);
  sys.write(vecs[0], a);
  sys.write(vecs[1], b);
  sys.execute(dram::bulk_op::or_op, vecs[0], &vecs[1], vecs[2]);
  auto f = sys.submit_bulk(dram::bulk_op::or_op, vecs[0], &vecs[1], vecs[3]);
  sys.wait(f);
  EXPECT_EQ(sys.read(vecs[3]), sys.read(vecs[2]));
  EXPECT_EQ(sys.read(vecs[3]), a | b);
}

TEST(OpReportTest, ZeroLatencyThroughputIsGuarded) {
  const op_report zero = op_report::make(0, 0.0, 8192);
  EXPECT_EQ(zero.throughput_gbps, 0.0);  // no division by zero
  const op_report negative = op_report::make(-10, 0.0, 8192);
  EXPECT_EQ(negative.throughput_gbps, 0.0);
  // 16 bytes every 1000 ps = 16 GB/s.
  const op_report ok = op_report::make(1000, 5.0, 16);
  EXPECT_DOUBLE_EQ(ok.throughput_gbps, 16.0);
  EXPECT_DOUBLE_EQ(ok.energy, 5.0);
}

// ---------------------------------------------------------------------------
// coherence
// ---------------------------------------------------------------------------

TEST(CoherenceTest, SpeculativeBeatsFlushAndUncacheable) {
  const auto results = compare_coherence();
  ASSERT_EQ(results.size(), 3u);
  const auto& flush = results[0];
  const auto& uncache = results[1];
  const auto& spec = results[2];
  EXPECT_EQ(flush.scheme, coherence_scheme::flush_based);
  EXPECT_EQ(spec.scheme, coherence_scheme::speculative);
  EXPECT_LT(spec.total_time, flush.total_time);
  EXPECT_LT(spec.total_time, uncache.total_time);
  EXPECT_LT(spec.coherence_traffic, flush.coherence_traffic / 4);
}

TEST(CoherenceTest, HighConflictErodesSpeculation) {
  coherence_config calm;
  calm.conflict_fraction = 0.02;
  coherence_config stormy;
  stormy.conflict_fraction = 0.9;
  const auto calm_r =
      simulate_coherence(coherence_scheme::speculative, calm);
  const auto stormy_r =
      simulate_coherence(coherence_scheme::speculative, stormy);
  EXPECT_GT(stormy_r.conflicts, calm_r.conflicts);
  EXPECT_GT(stormy_r.total_time, calm_r.total_time);
}

TEST(CoherenceTest, OverheadVersusIdealAtLeastOne) {
  for (const auto& r : compare_coherence()) {
    EXPECT_GE(r.overhead_vs_ideal, 1.0) << to_string(r.scheme);
  }
}

// ---------------------------------------------------------------------------
// address translation
// ---------------------------------------------------------------------------

TEST(PointerChaseTest, RegionTableBeatsPageWalk) {
  pointer_chase_config cfg;
  cfg.traversals = 8;
  cfg.chain_length = 2048;
  const auto walk = simulate_pointer_chase(translation_scheme::page_walk, cfg);
  const auto region =
      simulate_pointer_chase(translation_scheme::region_table, cfg);
  EXPECT_LT(region.total_time, walk.total_time);
  EXPECT_LT(region.translation_accesses, walk.translation_accesses / 10);
  // IMPICA's app-level gains were ~1.2-1.9x; we expect the same band
  // for the translation-bound traversal itself.
  const double speedup = static_cast<double>(walk.total_time) /
                         static_cast<double>(region.total_time);
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 6.0);
}

TEST(PointerChaseTest, TlbThrashesOnRandomChains) {
  pointer_chase_config cfg;
  cfg.traversals = 4;
  cfg.chain_length = 4096;
  const auto walk = simulate_pointer_chase(translation_scheme::page_walk, cfg);
  // 64 TLB entries over a 64 MiB structure: almost every hop misses.
  EXPECT_LT(walk.tlb_hit_rate, 0.05);
  EXPECT_GT(walk.ns_per_hop, 100.0);  // walk-dominated
}

TEST(PointerChaseTest, SmallStructureHitsTlb) {
  pointer_chase_config cfg;
  cfg.nodes = 1024;  // 64 KiB: 16 pages, fits a 64-entry TLB
  cfg.traversals = 4;
  cfg.chain_length = 4096;
  const auto walk = simulate_pointer_chase(translation_scheme::page_walk, cfg);
  EXPECT_GT(walk.tlb_hit_rate, 0.95);
}

// ---------------------------------------------------------------------------
// offload decision
// ---------------------------------------------------------------------------

TEST(OffloadTest, StreamingKernelOffloads) {
  kernel_profile texture_tiling;
  texture_tiling.instructions = 1'000'000;
  texture_tiling.memory_traffic = 64 * mib;
  texture_tiling.host_cache_hit = 0.05;
  const offload_decision d = decide(texture_tiling);
  EXPECT_TRUE(d.offload);
  EXPECT_GT(d.speedup, 2.0);
  EXPECT_LT(d.energy_ratio, 0.7);
}

TEST(OffloadTest, ComputeKernelStaysOnHost) {
  kernel_profile gemm;
  gemm.instructions = 500'000'000;
  gemm.memory_traffic = 8 * mib;
  gemm.host_cache_hit = 0.9;
  const offload_decision d = decide(gemm);
  // Compute-bound with high reuse: PIM gains nothing.
  EXPECT_LT(d.speedup, 1.5);
}

TEST(OffloadTest, CacheFriendlyKernelStaysOnHost) {
  kernel_profile resident;
  resident.instructions = 10'000'000;
  resident.memory_traffic = 1 * mib;
  resident.host_cache_hit = 0.95;  // PIM would pay 20x the traffic
  const offload_decision d = decide(resident);
  EXPECT_FALSE(d.offload);
}

}  // namespace
}  // namespace pim::core
