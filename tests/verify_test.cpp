// Tests for the static verification layer (src/verify/): the
// diagnostic catalog's contract (every ID fires on seeded-bad input,
// stays silent on every good artifact the repo's own producers emit),
// the checkers' individual invariants, and the release-parity property
// that verification never alters what a producer returns.
#include <stdexcept>

#include <gtest/gtest.h>

#include "db/bitweaving.h"
#include "db/lowering.h"
#include "dram/ambit.h"
#include "query/plan.h"
#include "verify/selftest.h"
#include "verify/verify.h"

namespace pim::verify {
namespace {

// ---------------------------------------------------------------------------
// Catalog contract
// ---------------------------------------------------------------------------

TEST(catalog, ids_are_stable_and_formatted) {
  EXPECT_EQ(id_of(diag::use_before_def), "V001");
  EXPECT_EQ(id_of(diag::scratch_budget), "V008");
  EXPECT_EQ(id_of(diag::input_out_of_schema), "V101");
  EXPECT_EQ(id_of(diag::colocation_violation), "V110");
  EXPECT_EQ(id_of(diag::unknown_dependency), "V201");
  EXPECT_EQ(id_of(diag::operand_size_mismatch), "V206");
  EXPECT_EQ(id_of(diag::opcode_range), "V301");
  EXPECT_EQ(id_of(diag::version_bounds), "V304");
}

TEST(catalog, every_entry_has_info) {
  for (const diag_info& info : catalog()) {
    EXPECT_STRNE(info.title, "");
    EXPECT_STRNE(info.summary, "");
    EXPECT_EQ(info_of(info.d).title, info.title);
  }
  EXPECT_THROW(info_of(static_cast<diag>(999)), std::invalid_argument);
}

/// The core mutation-test requirement: each diagnostic ID fires on its
/// seeded-bad artifact, and every known-good baseline is clean.
TEST(catalog, every_diagnostic_fires_on_seeded_bad_input) {
  const auto results = run_selftest();
  EXPECT_EQ(results.size(), catalog().size());
  for (const selftest_result& r : results) {
    EXPECT_TRUE(r.fired) << id_of(r.d) << " " << info_of(r.d).title
                         << " did not fire; report was:\n"
                         << r.detail;
  }
}

TEST(catalog, baselines_are_clean) {
  for (const auto& [name, r] : baseline_reports()) {
    EXPECT_TRUE(r.ok()) << name << " not clean:\n" << r.to_string();
  }
}

TEST(report, to_string_and_assert_ok) {
  report r;
  r.artifact = "unit";
  EXPECT_EQ(r.to_string(), "ok");
  EXPECT_NO_THROW(assert_ok(r));
  r.add(diag::dead_instruction, 3, "t1 written but never read afterwards");
  EXPECT_TRUE(r.has(diag::dead_instruction));
  EXPECT_FALSE(r.has(diag::use_before_def));
  EXPECT_NE(r.to_string().find("V006"), std::string::npos);
  EXPECT_NE(r.to_string().find("@3"), std::string::npos);
  EXPECT_THROW(assert_ok(r), std::logic_error);
}

// ---------------------------------------------------------------------------
// Producer cleanliness: everything the repo's own lowerings emit must
// verify, across the whole predicate space.
// ---------------------------------------------------------------------------

TEST(producers, lower_predicate_sweep_is_clean) {
  using db::cmp_op;
  const cmp_op ops[] = {cmp_op::eq, cmp_op::ne, cmp_op::lt, cmp_op::le,
                        cmp_op::gt, cmp_op::ge, cmp_op::between};
  for (int width : {1, 2, 3, 4, 5, 8, 12, 16, 24, 32}) {
    const std::uint64_t max =
        (width == 32) ? 0xFFFFFFFFull : ((1ull << width) - 1);
    std::vector<std::uint32_t> values = {0, 1,
                                         static_cast<std::uint32_t>(max / 2),
                                         static_cast<std::uint32_t>(max)};
    if (max > 1) values.push_back(static_cast<std::uint32_t>(max - 1));
    for (const cmp_op op : ops) {
      for (const std::uint32_t v : values) {
        db::predicate pred;
        pred.op = op;
        pred.value = v;
        pred.value2 = static_cast<std::uint32_t>(max);
        const db::scan_program prog = db::lower_predicate(width, pred);
        const report r = check_program(prog);
        EXPECT_TRUE(r.ok())
            << "width " << width << " op " << static_cast<int>(op)
            << " value " << v << ":\n"
            << r.to_string() << "\nprogram:\n"
            << db::to_string(prog);
      }
    }
  }
}

/// The specific shapes of the pruning fix: constants with trailing
/// zeros below the lowest set bit used to leave dead eq ops behind on
/// lt/ge consumers.
TEST(producers, lt_with_trailing_zero_constant_has_no_dead_ops) {
  for (const std::uint32_t c : {32u, 128u, 100u, 96u}) {
    const db::scan_program prog =
        db::lower_predicate(8, {db::cmp_op::lt, c, 0});
    const report r = check_program(prog);
    EXPECT_FALSE(r.has(diag::dead_instruction))
        << "lt " << c << ":\n" << db::to_string(prog);
    EXPECT_TRUE(r.ok()) << r.to_string();
  }
  // lt 128 = only the top slice decides: a single NOT.
  const db::scan_program prog =
      db::lower_predicate(8, {db::cmp_op::lt, 128, 0});
  EXPECT_EQ(prog.instrs.size(), 1u);
}

TEST(producers, plan_query_specs_are_clean) {
  using namespace pim::query;
  table_schema schema;
  schema.columns = {{"x", 8}, {"y", 6}, {"z", 3}};
  auto leaf = [](const std::string& col, db::cmp_op op, std::uint32_t v,
                 std::uint32_t v2 = 0) {
    db::predicate p;
    p.op = op;
    p.value = v;
    p.value2 = v2;
    return predicate_node::leaf(col, p);
  };
  const std::vector<query_spec> specs = {
      {leaf("z", db::cmp_op::lt, 5), agg_kind::count, ""},
      {leaf("x", db::cmp_op::lt, 32), agg_kind::count, ""},
      {predicate_node::land(leaf("x", db::cmp_op::lt, 100),
                            leaf("y", db::cmp_op::ge, 16)),
       agg_kind::count, ""},
      {predicate_node::lor(leaf("x", db::cmp_op::eq, 7),
                           leaf("y", db::cmp_op::lt, 8)),
       agg_kind::count, ""},
      {predicate_node::lnot(leaf("y", db::cmp_op::between, 40, 50)),
       agg_kind::count, ""},
      {leaf("x", db::cmp_op::lt, 32), agg_kind::sum, "y"},
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const query_plan plan = plan_query(schema, specs[i]);
    const report r = check_plan(schema, plan);
    EXPECT_TRUE(r.ok()) << "spec #" << i << ":\n"
                        << r.to_string() << "\n"
                        << to_string(plan);
  }
}

TEST(producers, canonical_wire_schema_is_clean) {
  const report r = check_wire_schema(canonical_wire_schema());
  EXPECT_TRUE(r.ok()) << r.to_string();
}

// ---------------------------------------------------------------------------
// Co-location against the real allocator
// ---------------------------------------------------------------------------

TEST(colocation, real_allocator_groups_are_colocated) {
  const dram::organization org;
  dram::ambit_allocator alloc(org);
  // Multi-row groups stripe across banks; the invariant must hold per
  // logical row index.
  const auto group = alloc.allocate_group(org.row_bits() * 6, 3);
  resolved_step step;
  step.operands = group;
  const report r = check_colocation(org, {step});
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(colocation, displaced_row_in_real_group_violates) {
  const dram::organization org;
  dram::ambit_allocator alloc(org);
  auto group = alloc.allocate_group(org.row_bits() * 6, 3);
  // Push one row of one operand into the neighboring subarray — the
  // exact corruption a broken remap or allocator would introduce.
  group[2].rows[3].row += org.rows_per_subarray();
  resolved_step step;
  step.operands = {group[0], group[1], group[2]};
  const report r = check_colocation(org, {step});
  EXPECT_TRUE(r.has(diag::colocation_violation)) << r.to_string();
}

TEST(colocation, virtual_physical_mix_violates) {
  const dram::organization org;
  dram::bulk_vector physical;
  physical.size = 8;
  physical.rows = {dram::address{0, 0, 0, 0, 0}};
  dram::bulk_vector virt;
  virt.size = 8;
  virt.rows = {dram::address{-1, 0, 0, 7, 0}};
  resolved_step step;
  step.operands = {physical, virt};
  const report r = check_colocation(org, {step});
  EXPECT_TRUE(r.has(diag::colocation_violation)) << r.to_string();
}

// ---------------------------------------------------------------------------
// Release parity: verification observes, never alters.
// ---------------------------------------------------------------------------

/// check_plan takes the plan by const reference and plan_query returns
/// the same program whether or not the debug hook ran — so a verified
/// plan must be bit-identical to a re-planned one. (Cross-build parity
/// — PIM_VERIFY=ON vs OFF — is proven by CI running the same pinned
/// planner goldens and query digests in both configurations.)
TEST(release_parity, planning_is_deterministic_and_unmodified) {
  using namespace pim::query;
  table_schema schema;
  schema.columns = {{"x", 8}};
  query_spec spec;
  spec.where = predicate_node::leaf("x", {db::cmp_op::lt, 100, 0});
  spec.agg = agg_kind::count;

  const query_plan first = plan_query(schema, spec);
  const std::string golden = to_string(first);
  const report r = check_plan(schema, first);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_string(first), golden);  // checking didn't touch it
  EXPECT_EQ(to_string(plan_query(schema, spec)), golden);
}

#if PIM_VERIFY_ENABLED
/// With verification compiled in, a malformed cross-plan is rejected
/// before it reaches a shard (exercised through the checker the
/// service hook calls, with the same inputs the hook builds).
TEST(release_parity, hook_rejects_bad_cross_plan) {
  cross_op op;
  op.op = dram::bulk_op::and_op;
  op.a.owner = 1;
  op.a.v.size = 8;
  op.a.v.rows = {dram::address{-1, 0, 0, 0, 0}};
  op.b = op.a;
  op.b->owner = 2;
  op.d = op.a;
  op.d.v.rows = {dram::address{-1, 0, 0, 1, 0}};
  EXPECT_THROW(assert_ok(check_cross_plan({op}, {{1, 0}})),  // owner 2 missing
               std::logic_error);
}
#endif

}  // namespace
}  // namespace pim::verify
