// Unit tests for the observability layer (src/obs): the geometric
// histogram edge cases, the metrics registry's caching contract, trace
// well-formedness, flow stitching, and the invariant that tracing
// never perturbs simulated results.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "service/synthetic.h"

namespace pim {
namespace {

/// Every tracer test drains + disables on entry and exit: the tracer
/// is process-global and other tests (and the service fixture) share
/// it.
struct tracer_guard {
  tracer_guard() {
    obs::tracer::instance().disable();
    obs::tracer::instance().clear();
  }
  ~tracer_guard() {
    obs::tracer::instance().disable();
    obs::tracer::instance().clear();
  }
};

// ---------------------------------------------------------------------------
// geo_histogram
// ---------------------------------------------------------------------------

TEST(GeoHistogramTest, EmptyPercentileIsZero) {
  geo_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.0), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(1.0), 0.0);
}

TEST(GeoHistogramTest, SingleSampleDominatesEveryPercentile) {
  geo_histogram h;
  h.record(1000);  // bit_width 10 -> bucket 10, upper bound 1024
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(0.0), 1024.0);
  EXPECT_EQ(h.percentile(0.5), 1024.0);
  EXPECT_EQ(h.percentile(1.0), 1024.0);
}

TEST(GeoHistogramTest, ZeroSampleLandsInBucketZero) {
  geo_histogram h;
  h.record(0);
  EXPECT_EQ(geo_histogram::bucket_of(0), 0u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.percentile(0.5), 1.0);  // bucket 0's upper bound is 2^0
}

TEST(GeoHistogramTest, MaxSampleLandsInTopBucket) {
  geo_histogram h;
  h.record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(geo_histogram::bucket_of(
                std::numeric_limits<std::uint64_t>::max()),
            64u);
  EXPECT_EQ(h.bucket(64), 1u);
  // 2^64 does not fit a u64; the upper bound is reported as a double.
  EXPECT_GT(h.percentile(0.99), 1.8e19);
}

TEST(GeoHistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket b holds [2^(b-1), 2^b): both edges of a boundary must land
  // on opposite sides.
  EXPECT_EQ(geo_histogram::bucket_of(1), 1u);
  EXPECT_EQ(geo_histogram::bucket_of(2), 2u);
  EXPECT_EQ(geo_histogram::bucket_of(3), 2u);
  EXPECT_EQ(geo_histogram::bucket_of(4), 3u);
  EXPECT_EQ(geo_histogram::bucket_of((1ull << 32) - 1), 32u);
  EXPECT_EQ(geo_histogram::bucket_of(1ull << 32), 33u);
}

TEST(GeoHistogramTest, WeightedRecordCountsWeight) {
  geo_histogram h;
  h.record(100, 7);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.bucket(geo_histogram::bucket_of(100)), 7u);
}

TEST(GeoHistogramTest, MergeEqualsInterleavedRecording) {
  // Mergeability is the property shard aggregation relies on: N
  // per-shard histograms summed must equal one histogram fed all
  // samples, regardless of grouping.
  geo_histogram all;
  geo_histogram parts[3];
  for (std::uint64_t s = 0; s < 300; ++s) {
    const std::uint64_t sample = s * s + 1;
    all.record(sample);
    parts[s % 3].record(sample);
  }
  geo_histogram merged;
  merged.merge(parts[0]);
  merged.merge(parts[1]);
  merged.merge(parts[2]);
  EXPECT_EQ(merged, all);
  // And a different association order gives the same result.
  geo_histogram merged2;
  merged2.merge(parts[2]);
  merged2.merge(parts[0]);
  merged2.merge(parts[1]);
  EXPECT_EQ(merged2, all);
}

// ---------------------------------------------------------------------------
// metrics_registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterReferencesSurviveReset) {
  auto& reg = obs::metrics_registry::instance();
  std::atomic<std::uint64_t>& c = reg.counter("obs_test.survives");
  std::atomic<std::int64_t>& g = reg.gauge("obs_test.gauge");
  c.fetch_add(41);
  g.store(-5);
  reg.reset();
  // The documented contract: hot paths cache these references, so a
  // reset must zero in place, never invalidate.
  EXPECT_EQ(c.load(), 0u);
  EXPECT_EQ(g.load(), 0);
  c.fetch_add(1);
  EXPECT_EQ(reg.counter("obs_test.survives").load(), 1u);
  EXPECT_EQ(&reg.counter("obs_test.survives"), &c);
}

TEST(MetricsRegistryTest, HistogramRecordAndSnapshot) {
  auto& reg = obs::metrics_registry::instance();
  reg.reset();
  for (int i = 0; i < 100; ++i) {
    reg.record("obs_test.latency", static_cast<std::uint64_t>(1000 + i));
  }
  const geo_histogram h = reg.histogram("obs_test.latency");
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(0.5), 2048.0);  // all samples in bucket 11
  EXPECT_EQ(reg.histogram("obs_test.never_recorded").count(), 0u);
}

TEST(MetricsRegistryTest, JsonContainsAllSections) {
  auto& reg = obs::metrics_registry::instance();
  reg.reset();
  reg.counter("obs_test.json_counter").store(3);
  reg.gauge("obs_test.json_gauge").store(-7);
  reg.record("obs_test.json_histo", 12);
  const std::string doc = reg.json();
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"obs_test.json_counter\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"obs_test.json_gauge\":-7"), std::string::npos);
  EXPECT_NE(doc.find("\"obs_test.json_histo\""), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentCountersAreExact) {
  auto& reg = obs::metrics_registry::instance();
  reg.reset();
  constexpr int threads = 8;
  constexpr int per_thread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&reg] {
      // Mixed creation + cached updates from every thread: the
      // registry mutex covers creation, the atomics the updates.
      std::atomic<std::uint64_t>& c = reg.counter("obs_test.concurrent");
      for (int i = 0; i < per_thread; ++i) {
        c.fetch_add(1, std::memory_order_relaxed);
        reg.gauge("obs_test.concurrent_gauge")
            .store(i, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.counter("obs_test.concurrent").load(),
            static_cast<std::uint64_t>(threads) * per_thread);
}

// ---------------------------------------------------------------------------
// tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  tracer_guard guard;
  auto& t = obs::tracer::instance();
  ASSERT_FALSE(t.enabled());
  {
    obs::span s("never", "test");
    obs::emit_instant("never", "test");
    obs::emit_flow_begin(obs::new_flow(), "never", "test");
  }
  EXPECT_EQ(t.event_count(), 0u);
}

TEST(TracerTest, SpansBalanceAndValidate) {
  tracer_guard guard;
  auto& t = obs::tracer::instance();
  t.enable();
  {
    obs::span outer("outer", "test");
    { obs::span inner("inner", "test"); }
    obs::emit_instant("tick", "test");
  }
  t.disable();
  const std::vector<obs::trace_event> events = t.snapshot();
  EXPECT_EQ(events.size(), 5u);  // 2x begin/end + 1 instant
  EXPECT_EQ(obs::validate(events), "");
}

TEST(TracerTest, FlowStitchingValidates) {
  tracer_guard guard;
  auto& t = obs::tracer::instance();
  t.enable();
  const std::uint64_t flow = obs::new_flow();
  EXPECT_NE(flow, 0u);  // zero means "no flow" everywhere
  obs::emit_flow_begin(flow, "request", "test");
  std::thread other([flow] { obs::emit_flow_step(flow, "request", "test"); });
  other.join();
  obs::emit_flow_end(flow, "request", "test");
  t.disable();
  EXPECT_EQ(obs::validate(t.snapshot()), "");
}

TEST(TracerTest, ValidateCatchesOrphanFlowAndUnclosedSpan) {
  tracer_guard guard;
  auto& t = obs::tracer::instance();
  t.enable();
  obs::emit_flow_step(12345, "orphan", "test");
  t.disable();
  EXPECT_NE(obs::validate(t.snapshot()), "");
  t.clear();

  std::vector<obs::trace_event> events;
  obs::trace_event b;
  b.kind = obs::event_kind::begin;
  b.track = 7;
  events.push_back(b);
  EXPECT_NE(obs::validate(events), "");  // begin without end
}

TEST(TracerTest, ChromeJsonIsStructurallySound) {
  tracer_guard guard;
  auto& t = obs::tracer::instance();
  t.enable();
  t.name_thread("obs-test", "main");
  const std::uint64_t flow = obs::new_flow();
  obs::emit_flow_begin(flow, "request", "test");
  {
    obs::span s("work", "test", flow, "bytes", 4096);
  }
  obs::emit_flow_end(flow, "request", "test");
  t.disable();

  const std::string doc = t.chrome_json();
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(doc.find("\"ph\":\"s\""), std::string::npos);  // flow begin
  EXPECT_NE(doc.find("\"ph\":\"f\""), std::string::npos);  // flow end
  EXPECT_NE(doc.find("\"main\""), std::string::npos);  // thread_name metadata
  EXPECT_NE(doc.find("\"work\""), std::string::npos);  // the span itself
  // Brace balance outside string literals: the cheap structural check
  // (CI runs the real parser, python3 -m json.tool, on the artifacts).
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(TracerTest, ConcurrentRecordingWhileDraining) {
  // The TSan target: many recorders against a concurrent drain.
  tracer_guard guard;
  auto& t = obs::tracer::instance();
  t.enable();
  constexpr int threads = 4;
  constexpr int iters = 1000;
  std::atomic<int> finished{0};
  std::vector<std::thread> pool;
  for (int i = 0; i < threads; ++i) {
    pool.emplace_back([&finished] {
      for (int n = 0; n < iters; ++n) {
        obs::span s("worker", "test");
        obs::emit_instant("tick", "test");
      }
      finished.fetch_add(1);
    });
  }
  // Drain continuously while the recorders run: the contended path.
  while (finished.load() < threads) {
    (void)t.event_count();
    (void)t.snapshot();
  }
  for (std::thread& th : pool) th.join();
  t.disable();
  // Exact: begin + end + instant per iteration, nothing dropped.
  EXPECT_EQ(t.event_count(),
            static_cast<std::size_t>(threads) * iters * 3);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(obs::validate(t.snapshot()), "");
}

// ---------------------------------------------------------------------------
// tracing vs simulation: observation must not perturb results
// ---------------------------------------------------------------------------

service::service_config tiny_service_config() {
  service::service_config cfg;
  cfg.shards = 2;
  cfg.system.org.channels = 1;
  cfg.system.org.banks = 4;
  cfg.system.org.subarrays = 4;
  cfg.system.org.rows = 256;
  cfg.system.org.columns = 128;
  cfg.routing = service::shard_routing::range;
  cfg.sessions_per_shard = 2;
  return cfg;
}

std::vector<std::uint64_t> run_fleet_digests() {
  std::vector<service::synthetic_config> population(3);
  for (std::size_t i = 0; i < population.size(); ++i) {
    population[i].ops = 12;
    population[i].groups = 2;
    population[i].vector_bits = 8192;
    population[i].seed = 77 + i;
  }
  service::pim_service svc(tiny_service_config());
  svc.start();
  const auto outcomes =
      service::run_synthetic_fleet(svc, population, /*burst=*/false);
  svc.stop();
  std::vector<std::uint64_t> digests;
  for (const auto& o : outcomes) digests.push_back(o.digest);
  return digests;
}

TEST(TracedExecutionTest, DigestsIdenticalTracedAndUntraced) {
  tracer_guard guard;
  auto& t = obs::tracer::instance();
  const std::vector<std::uint64_t> untraced = run_fleet_digests();

  t.enable();
  const std::vector<std::uint64_t> traced = run_fleet_digests();
  t.disable();

  EXPECT_EQ(traced, untraced);
  EXPECT_GT(t.event_count(), 0u);
  EXPECT_EQ(obs::validate(t.snapshot()), "");
  EXPECT_EQ(t.dropped(), 0u);
}

}  // namespace
}  // namespace pim
