// Tests for the database layer: bit-sliced storage, predicate
// evaluation, bitmap indices, and the query cost models.
#include <gtest/gtest.h>

#include "db/bitmap_index.h"
#include "db/query.h"

namespace pim::db {
namespace {

TEST(BitsliceStorageTest, RoundTripsValues) {
  rng gen(1);
  const column col = random_column(1000, 11, gen);
  const bitslice_storage st(col);
  EXPECT_EQ(st.width(), 11);
  EXPECT_EQ(st.rows(), 1000u);
  for (std::size_t r = 0; r < col.rows(); ++r) {
    ASSERT_EQ(st.value_at(r), col.values[r]);
  }
}

TEST(RandomColumnTest, ValuesWithinWidth) {
  rng gen(2);
  const column col = random_column(5000, 7, gen);
  for (auto v : col.values) EXPECT_LT(v, 128u);
  EXPECT_THROW(random_column(10, 0, gen), std::invalid_argument);
  EXPECT_THROW(random_column(10, 33, gen), std::invalid_argument);
}

class PredicateTest : public ::testing::TestWithParam<cmp_op> {};

TEST_P(PredicateTest, MatchesScalarReference) {
  rng gen(3);
  const column col = random_column(4096, 10, gen);
  const bitslice_storage st(col);
  for (std::uint32_t value : {0u, 1u, 511u, 512u, 1022u, 1023u}) {
    predicate pred{GetParam(), value, std::min(value + 100, 1023u)};
    const scan_result got = evaluate(st, pred);
    EXPECT_EQ(got.selection, evaluate_reference(col, pred))
        << "op=" << static_cast<int>(GetParam()) << " value=" << value;
    EXPECT_FALSE(got.ops.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, PredicateTest,
                         ::testing::Values(cmp_op::eq, cmp_op::ne, cmp_op::lt,
                                           cmp_op::le, cmp_op::gt, cmp_op::ge,
                                           cmp_op::between));

TEST(PredicateTest, ClampsConstantsOutsideTheColumnWidth) {
  // A constant that does not fit the column width is decided by its
  // high bits alone: the lowering materializes the constant answer
  // instead of silently comparing only the low bits (which would
  // diverge from the scalar reference).
  rng gen(11);
  const column col = random_column(2048, 6, gen);
  const bitslice_storage st(col);
  for (cmp_op op : {cmp_op::eq, cmp_op::ne, cmp_op::lt, cmp_op::le,
                    cmp_op::gt, cmp_op::ge}) {
    const predicate pred{op, 600, 0};  // 600 >= 2^6
    const scan_result got = evaluate(st, pred);
    EXPECT_EQ(got.selection, evaluate_reference(col, pred))
        << "op=" << static_cast<int>(op);
    EXPECT_FALSE(got.ops.empty());
  }
  // between with an oversized upper bound degenerates to >= lo.
  const predicate range{cmp_op::between, 20, 999};
  EXPECT_EQ(evaluate(st, range).selection, evaluate_reference(col, range));
  // between with an unreachable lower bound is empty.
  const predicate none{cmp_op::between, 600, 999};
  EXPECT_EQ(evaluate(st, none).selection, evaluate_reference(col, none));
}

TEST(PredicateTest, EqUsesLinearOpsInWidth) {
  rng gen(4);
  const column col = random_column(256, 16, gen);
  const bitslice_storage st(col);
  const scan_result r = evaluate(st, predicate{cmp_op::eq, 1234, 0});
  // One AND (+ optional NOT) per slice.
  EXPECT_LE(r.ops.size(), 2u * 16u);
  EXPECT_GE(r.ops.size(), 16u);
}

TEST(BitmapIndexTest, CountsMatchReference) {
  rng gen(5);
  const column col = random_column(10000, 4, gen);  // cardinality 16
  const bitmap_index index(col, 16);
  const std::vector<std::uint32_t> wanted = {1, 5, 9};
  std::size_t expected = 0;
  for (auto v : col.values) {
    if (v == 1 || v == 5 || v == 9) ++expected;
  }
  EXPECT_EQ(index.count_in(wanted), expected);
  EXPECT_EQ(index.query_in(wanted).ops.size(), 3u);
}

TEST(BitmapIndexTest, BitmapsPartitionRows) {
  rng gen(6);
  const column col = random_column(5000, 3, gen);
  const bitmap_index index(col, 8);
  bitvector all(5000);
  std::size_t total = 0;
  for (std::uint32_t v = 0; v < 8; ++v) {
    total += index.bitmap(v).popcount();
    all |= index.bitmap(v);
  }
  EXPECT_EQ(total, 5000u);
  EXPECT_TRUE(all.all());
}

TEST(BitmapIndexTest, RejectsBadValues) {
  rng gen(7);
  const column col = random_column(100, 3, gen);
  const bitmap_index index(col, 8);
  EXPECT_THROW(index.count_in({8}), std::out_of_range);
  EXPECT_THROW(bitmap_index(col, 4), std::invalid_argument);
}

TEST(QueryCostTest, AmbitWinsAtEverySize) {
  rng gen(8);
  for (std::size_t rows : {std::size_t{1} << 20, std::size_t{1} << 23}) {
    const column col = random_column(rows, 8, gen);
    const bitslice_storage st(col);
    const auto cmp = compare_scan(st, predicate{cmp_op::lt, 100, 0});
    // The LLC-resident size wins by less since the lowering stopped
    // emitting dead eq-maintenance ops: a shorter program leaves fewer
    // ops to amortize Ambit's fixed selection read-back over, while
    // the CPU side scans fewer slices too. Cache-resident scans were
    // never the paper's headline case — DRAM-resident ones below are.
    EXPECT_GT(cmp.speedup(), rows <= (std::size_t{1} << 20) ? 1.2 : 3.0)
        << rows;
  }
}

TEST(QueryCostTest, SpeedupGrowsWithDataSetSize) {
  rng gen(9);
  double last = 0.0;
  for (std::size_t rows :
       {std::size_t{1} << 20, std::size_t{1} << 23, std::size_t{1} << 25}) {
    const column col = random_column(rows, 12, gen);
    const bitslice_storage st(col);
    const auto cmp = compare_scan(st, predicate{cmp_op::lt, 1800, 0});
    EXPECT_GE(cmp.speedup(), last);
    last = cmp.speedup();
  }
  EXPECT_GT(last, 10.0);  // the paper's "up to 12x" end of the curve
}

TEST(QueryCostTest, CpuLatencyScalesWithOps) {
  const std::vector<dram::bulk_op> one = {dram::bulk_op::and_op};
  const std::vector<dram::bulk_op> four(4, dram::bulk_op::and_op);
  const auto t1 = cpu_scan_latency(1 << 22, 12, one);
  const auto t4 = cpu_scan_latency(1 << 22, 12, four);
  // Ops cost traffic_factor units each plus one constant popcount
  // pass: 4 ops => (4*1.5+1)/(1.5+1) = 2.8x one op.
  EXPECT_GT(t4, 5 * t1 / 2);
  EXPECT_LT(t4, 3 * t1);
}

TEST(QueryCostTest, AmbitChargesPerStepCounts) {
  const std::vector<dram::bulk_op> cheap = {dram::bulk_op::and_op};   // 4
  const std::vector<dram::bulk_op> pricey = {dram::bulk_op::xor_op};  // 7
  const auto ta = ambit_scan_latency(1 << 24, cheap);
  const auto tx = ambit_scan_latency(1 << 24, pricey);
  EXPECT_GT(tx, ta);
}

TEST(EndToEndTest, CountQueryOnAmbitHardwareMatchesFunctional) {
  // Run a small scan through the *cycle-level* Ambit engine and check
  // the selection matches the functional evaluation.
  dram::organization org;
  org.channels = 1;
  org.ranks = 1;
  org.banks = 4;
  org.subarrays = 8;
  org.rows = 512;
  org.columns = 8;  // 512 B rows
  dram::memory_system mem(org, dram::ddr3_1600());
  dram::ambit_allocator alloc(org);
  dram::ambit_engine engine(mem);

  rng gen(10);
  const std::size_t rows = org.row_bits() * 2;  // two DRAM rows per slice
  const column col = random_column(rows, 3, gen);
  const bitslice_storage st(col);

  // Allocate slices + two masks + scratch in one co-located group.
  auto group = alloc.allocate_group(rows, 6);
  for (int b = 0; b < 3; ++b) engine.write_vector(group[static_cast<std::size_t>(b)], st.slice(b));
  // eq := ~s2 & ~s1 & s0  (predicate: value == 1)
  dram::bulk_vector& eq = group[3];
  dram::bulk_vector& tmp = group[4];
  engine.execute(dram::bulk_op::nor_op, group[2], &group[1], eq);   // ~s2&~s1
  mem.drain();
  engine.execute(dram::bulk_op::and_op, eq, &group[0], tmp);        // & s0
  mem.drain();
  const bitvector hw = engine.read_vector(tmp);
  EXPECT_EQ(hw, evaluate_reference(col, predicate{cmp_op::eq, 1, 0}));
}

}  // namespace
}  // namespace pim::db
