// Unit tests for the host-processor model (src/cpu).
#include <gtest/gtest.h>

#include "cpu/cache.h"
#include "cpu/kernels.h"
#include "cpu/system.h"
#include "cpu/traffic_model.h"

namespace pim::cpu {
namespace {

// ---------------------------------------------------------------------------
// cache
// ---------------------------------------------------------------------------

TEST(CacheTest, RejectsBadConfig) {
  EXPECT_THROW(cache(cache_config{"c", 0, 8, 64}), std::invalid_argument);
  EXPECT_THROW(cache(cache_config{"c", 32 * kib, 0, 64}),
               std::invalid_argument);
  EXPECT_THROW(cache(cache_config{"c", 48 * kib, 7, 64}),
               std::invalid_argument);
}

TEST(CacheTest, MissThenHit) {
  cache c(cache_config{"c", 4 * kib, 4, 64});
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(63, false).hit);   // same line
  EXPECT_FALSE(c.access(64, false).hit);  // next line
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(CacheTest, LruEvictsOldest) {
  // 2 sets x 2 ways, 64 B lines = 256 B cache.
  cache c(cache_config{"c", 256, 2, 64});
  // Three lines mapping to set 0: 0, 128, 256.
  c.access(0, false);
  c.access(128, false);
  c.access(0, false);       // refresh line 0
  c.access(256, false);     // evicts 128 (LRU)
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(128));
  EXPECT_TRUE(c.contains(256));
}

TEST(CacheTest, DirtyEvictionReportsWriteback) {
  cache c(cache_config{"c", 256, 2, 64});
  c.access(0, true);  // dirty
  c.access(128, false);
  const auto out = c.access(256, false);  // evicts 0
  ASSERT_TRUE(out.writeback.has_value());
  EXPECT_EQ(*out.writeback, 0u);
}

TEST(CacheTest, CleanEvictionNoWriteback) {
  cache c(cache_config{"c", 256, 2, 64});
  c.access(0, false);
  c.access(128, false);
  EXPECT_FALSE(c.access(256, false).writeback.has_value());
}

TEST(CacheTest, InvalidateReturnsDirtyAddress) {
  cache c(cache_config{"c", 4 * kib, 4, 64});
  c.access(320, true);
  const auto dirty = c.invalidate(320);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(*dirty, 320u);
  EXPECT_FALSE(c.contains(320));
  EXPECT_FALSE(c.invalidate(320).has_value());  // already gone
}

TEST(CacheTest, FlushReturnsAllDirtyLines) {
  cache c(cache_config{"c", 4 * kib, 4, 64});
  c.access(0, true);
  c.access(64, false);
  c.access(128, true);
  const auto dirty = c.flush();
  EXPECT_EQ(dirty.size(), 2u);
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.contains(64));
}

// ---------------------------------------------------------------------------
// traffic model
// ---------------------------------------------------------------------------

TEST(TrafficModelTest, SequentialStreamHitsRows) {
  const dram::organization org = dram::ddr3_dimm(1);
  dram_traffic_model m(org, dram::ddr3_1600());
  // Stream 64 KiB sequentially.
  for (std::uint64_t a = 0; a < 64 * kib; a += 64) m.access(a, false);
  EXPECT_GT(m.row_hit_rate(), 0.9);
  EXPECT_EQ(m.lines_read(), 1024u);
}

TEST(TrafficModelTest, RandomAccessesMissRows) {
  const dram::organization org = dram::ddr3_dimm(1);
  dram_traffic_model m(org, dram::ddr3_1600());
  rng gen(5);
  for (int i = 0; i < 4096; ++i) {
    m.access(gen.next_below(org.total_bytes() / 64) * 64, false);
  }
  EXPECT_LT(m.row_hit_rate(), 0.1);
  EXPECT_GT(m.activations(), 3000u);
}

TEST(TrafficModelTest, RandomSlowerThanSequential) {
  // Single rank: the tFAW activation-rate window binds random traffic
  // (a dual-rank channel can hide it behind rank interleaving).
  dram::organization org = dram::ddr3_dimm(1);
  org.ranks = 1;
  dram_traffic_model seq(org, dram::ddr3_1600());
  dram_traffic_model rnd(org, dram::ddr3_1600());
  rng gen(6);
  for (std::uint64_t i = 0; i < 8192; ++i) {
    seq.access(i * 64, false);
    rnd.access(gen.next_below(org.total_bytes() / 64) * 64, false);
  }
  EXPECT_GT(rnd.service_time_ps(), seq.service_time_ps() * 7 / 5);
}

TEST(TrafficModelTest, ResetClearsState) {
  const dram::organization org = dram::ddr3_dimm(1);
  dram_traffic_model m(org, dram::ddr3_1600());
  m.access(0, true);
  m.reset();
  EXPECT_EQ(m.bytes_moved(), 0u);
  EXPECT_EQ(m.service_time_ps(), 0);
}

// ---------------------------------------------------------------------------
// system model + kernels
// ---------------------------------------------------------------------------

TEST(SystemModelTest, StreamReadIsBandwidthBound) {
  system_model model(desktop_system());
  stream_read_kernel k(64 * mib);
  const run_result r = model.run(k);
  // Dual-channel DDR3-2133: peak 34.1 GB/s; sustained within [15, 34.1].
  EXPECT_GT(r.bandwidth_gbps(), 15.0);
  EXPECT_LT(r.bandwidth_gbps(), 34.2);
  EXPECT_GT(r.dram_row_hit_rate, 0.9);
}

TEST(SystemModelTest, CacheResidentKernelDoesNotTouchDram) {
  system_model model(desktop_system());
  stream_read_kernel warm(16 * kib);
  model.run(warm);
  // A tiny working set misses only compulsorily.
  stream_read_kernel k(16 * kib);
  const run_result r = model.run(k);
  EXPECT_LE(r.dram_bytes, 32 * kib);
}

TEST(SystemModelTest, CopyMovesThreeStreamsWithAllocate) {
  system_model model(desktop_system());
  stream_copy_kernel k(32 * mib, 0, 1ull * gib);
  const run_result r = model.run(k);
  // read src + allocate dst + writeback dst = 3x the copy size.
  EXPECT_NEAR(static_cast<double>(r.dram_bytes),
              3.0 * 32.0 * static_cast<double>(mib),
              4.0 * static_cast<double>(mib));
}

TEST(SystemModelTest, RandomAccessIsLatencyBound) {
  system_config cfg = desktop_system();
  cfg.core.max_outstanding_misses = 1;  // pointer chasing, no MLP
  cfg.num_cores = 1;
  system_model model(cfg);
  random_access_kernel k(100'000, 512 * mib);
  const run_result r = model.run(k);
  // ~100k dependent misses at ~40+ ns each.
  EXPECT_GT(r.time, ns_to_ps(3'000'000));
  EXPECT_LT(r.l2_hit_rate, 0.2);
}

TEST(SystemModelTest, EnergyComponentsArePositiveAndSum) {
  system_model model(mobile_soc());
  stream_bitwise_kernel k(8 * mib, false, 0, 1ull * gib, 2ull * gib);
  const run_result r = model.run(k);
  const energy_breakdown& e = r.energy;
  EXPECT_GT(e.core_dynamic, 0.0);
  EXPECT_GT(e.core_static, 0.0);
  EXPECT_GT(e.l1, 0.0);
  EXPECT_GT(e.l2, 0.0);
  EXPECT_GT(e.dram_core, 0.0);
  EXPECT_GT(e.dram_io, 0.0);
  EXPECT_DOUBLE_EQ(e.total(), e.compute() + e.data_movement());
  EXPECT_GT(e.data_movement_fraction(), 0.3);
}

TEST(SystemModelTest, PimCoreConfigHasMoreBandwidthLessIoEnergy) {
  system_model host(mobile_soc());
  system_model pim(pim_logic_core());
  stream_copy_kernel k1(32 * mib, 0, 1ull * gib);
  stream_copy_kernel k2(32 * mib, 0, 1ull * gib);
  const run_result rh = host.run(k1);
  const run_result rp = pim.run(k2);
  EXPECT_LT(rp.time, rh.time);
  EXPECT_LT(rp.energy.dram_io, rh.energy.dram_io / 2.0);
}

TEST(SystemModelTest, StreamingStoresAvoidAllocateTraffic) {
  system_model m1(desktop_system());
  system_model m2(desktop_system());
  stream_set_kernel nt(32 * mib, 0, true);
  stream_set_kernel wa(32 * mib, 0, false);
  const run_result r1 = m1.run(nt);
  const run_result r2 = m2.run(wa);
  // Full-line stores: the model treats both as write-allocate at line
  // granularity, so traffic matches; this documents the invariant.
  EXPECT_EQ(r1.dram_bytes, r2.dram_bytes);
}

TEST(StridedKernelTest, LargeStrideWastesBandwidth) {
  system_model m1(desktop_system());
  system_model m2(desktop_system());
  strided_read_kernel dense(8 * mib, 64);
  strided_read_kernel sparse(8 * mib, 4096);
  const run_result rd = m1.run(dense);
  const run_result rs = m2.run(sparse);
  // Sparse touches 64x fewer lines.
  EXPECT_LT(rs.dram_bytes * 32, rd.dram_bytes);
}

}  // namespace
}  // namespace pim::cpu
