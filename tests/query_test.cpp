// Tests for the PIM-native query engine: planner lowering goldens,
// and end-to-end digest equality of executed queries across shard
// counts, transports (in-process vs remote_client), and the
// synchronous db/bitweaving reference — including empty/all-match
// predicates, multi-column AND/OR trees, sum aggregates, and partition
// boundary rows (row counts that do not divide evenly).
#include <memory>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "query/exec.h"
#include "service/client.h"

namespace pim::query {
namespace {

// ---------------------------------------------------------------------------
// Planner goldens
// ---------------------------------------------------------------------------

TEST(plan, golden_lt_leaf) {
  const table_schema schema{{{"x", 3}}};
  query_spec spec;
  spec.where = predicate_node::leaf("x", {db::cmp_op::lt, 5, 0});
  spec.agg = agg_kind::count;
  const query_plan plan = plan_query(schema, spec);
  // No trailing eq update for the least significant slice: lt-only
  // consumers skip it (it would be a dead op on every partition).
  EXPECT_EQ(to_string(plan),
            "t0 = NOT c0[2]\n"
            "t2 = NOT c0[1]\n"
            "t1 = AND c0[2], t2\n"
            "t2 = NOT c0[0]\n"
            "t3 = AND t1, t2\n"
            "t0 = OR t0, t3\n"
            "selection = t0\n"
            "count = popcount(selection)\n");
  EXPECT_EQ(plan.input_count(), 3);
  EXPECT_EQ(plan.scratch_count, 4);
}

TEST(plan, golden_eq_with_sum_aggregate) {
  const table_schema schema{{{"x", 2}, {"y", 2}}};
  query_spec spec;
  spec.where = predicate_node::leaf("x", {db::cmp_op::eq, 2, 0});
  spec.agg = agg_kind::sum;
  spec.agg_column = "y";
  const query_plan plan = plan_query(schema, spec);
  EXPECT_EQ(to_string(plan),
            "t1 = NOT c0[0]\n"
            "t0 = AND c0[1], t1\n"
            "t2 = AND t0, c1[0]\n"
            "t3 = AND t0, c1[1]\n"
            "selection = t0\n"
            "sum += popcount(t2) << 0\n"
            "sum += popcount(t3) << 1\n");
  ASSERT_EQ(plan.sum_regs.size(), 2u);
}

TEST(plan, degenerate_slice_predicate_copies_into_scratch) {
  // `x == 1` on a 1-bit column is the bare slice; the plan must still
  // land the selection in a writable scratch register.
  const table_schema schema{{{"x", 1}}};
  query_spec spec;
  spec.where = predicate_node::leaf("x", {db::cmp_op::eq, 1, 0});
  const query_plan plan = plan_query(schema, spec);
  EXPECT_EQ(to_string(plan),
            "t0 = OR c0[0], c0[0]\n"
            "selection = t0\n"
            "count = popcount(selection)\n");
  EXPECT_GE(plan.selection, plan.input_count());
}

TEST(plan, and_tree_emits_both_leaves_then_combines) {
  const table_schema schema{{{"x", 4}, {"y", 3}}};
  query_spec spec;
  spec.where = predicate_node::land(
      predicate_node::leaf("x", {db::cmp_op::ge, 6, 0}),
      predicate_node::leaf("y", {db::cmp_op::ne, 3, 0}));
  const query_plan plan = plan_query(schema, spec);
  // Last step combines the two leaf results with AND.
  ASSERT_FALSE(plan.steps.empty());
  EXPECT_EQ(plan.steps.back().op, dram::bulk_op::and_op);
  EXPECT_EQ(plan.steps.back().d, plan.selection);
  // Inputs reference both columns.
  bool saw_x = false;
  bool saw_y = false;
  for (const slice_ref& in : plan.inputs) {
    saw_x |= in.column == 0;
    saw_y |= in.column == 1;
  }
  EXPECT_TRUE(saw_x);
  EXPECT_TRUE(saw_y);
}

TEST(plan, rejects_unknown_column_and_missing_sum_column) {
  const table_schema schema{{{"x", 4}}};
  query_spec spec;
  spec.where = predicate_node::leaf("nope", {db::cmp_op::lt, 1, 0});
  EXPECT_THROW(plan_query(schema, spec), std::invalid_argument);

  query_spec sum_spec;
  sum_spec.where = predicate_node::leaf("x", {db::cmp_op::lt, 1, 0});
  sum_spec.agg = agg_kind::sum;  // agg_column left empty
  EXPECT_THROW(plan_query(schema, sum_spec), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end execution
// ---------------------------------------------------------------------------

service::service_config small_config(int shards, int partitions) {
  service::service_config cfg;
  cfg.shards = shards;
  cfg.system.org.channels = 2;
  cfg.system.org.ranks = 1;
  cfg.system.org.banks = 4;
  cfg.system.org.subarrays = 4;
  cfg.system.org.rows = 512;
  cfg.system.org.columns = 128;
  cfg.routing = service::shard_routing::range;
  cfg.sessions_per_shard = static_cast<std::uint64_t>(
      std::max(1, partitions / shards));
  return cfg;
}

/// Test data: two columns over `rows` rows, deterministic.
struct dataset {
  table_schema schema{{{"x", 6}, {"y", 4}}};
  db::column x;
  db::column y;

  explicit dataset(std::size_t rows) {
    rng gen(2026);
    x = db::random_column(rows, 6, gen);
    y = db::random_column(rows, 4, gen);
  }
};

/// Host-side reference: evaluates the predicate tree with the scalar
/// column evaluator.
bitvector reference_selection(const dataset& data,
                              const predicate_node& node) {
  switch (node.kind) {
    case predicate_node::node_kind::leaf: {
      const db::column& col = node.column == "x" ? data.x : data.y;
      return db::evaluate_reference(col, node.pred);
    }
    case predicate_node::node_kind::logic_and: {
      bitvector acc = reference_selection(data, node.children[0]);
      for (std::size_t i = 1; i < node.children.size(); ++i) {
        acc &= reference_selection(data, node.children[i]);
      }
      return acc;
    }
    case predicate_node::node_kind::logic_or: {
      bitvector acc = reference_selection(data, node.children[0]);
      for (std::size_t i = 1; i < node.children.size(); ++i) {
        acc |= reference_selection(data, node.children[i]);
      }
      return acc;
    }
    case predicate_node::node_kind::logic_not:
      return ~reference_selection(data, node.children[0]);
  }
  throw std::logic_error("unknown node kind");
}

std::uint64_t reference_sum(const dataset& data, const bitvector& selection) {
  std::uint64_t sum = 0;
  for (std::size_t r = 0; r < selection.size(); ++r) {
    if (selection.get(r)) sum += data.y.values[r];
  }
  return sum;
}

/// The query mix every variant runs: scans, boundary constants,
/// empty/all-match, an out-of-range constant, AND/OR trees, and a sum.
std::vector<query_spec> query_mix() {
  std::vector<query_spec> specs;
  auto leaf = [](const char* col, db::cmp_op op, std::uint32_t v,
                 std::uint32_t v2 = 0) {
    return predicate_node::leaf(col, {op, v, v2});
  };
  {
    query_spec q;
    q.where = leaf("x", db::cmp_op::lt, 17);
    specs.push_back(q);
  }
  {
    query_spec q;
    q.where = leaf("x", db::cmp_op::between, 10, 40);
    specs.push_back(q);
  }
  {
    query_spec q;  // empty: nothing is below zero
    q.where = leaf("x", db::cmp_op::lt, 0);
    specs.push_back(q);
  }
  {
    query_spec q;  // all-match: everything is >= 0
    q.where = leaf("x", db::cmp_op::ge, 0);
    specs.push_back(q);
  }
  {
    query_spec q;  // constant outside the 6-bit domain: empty, by clamping
    q.where = leaf("x", db::cmp_op::eq, 600);
    specs.push_back(q);
  }
  {
    query_spec q;  // multi-column AND
    q.where = predicate_node::land(leaf("x", db::cmp_op::lt, 20),
                                   leaf("y", db::cmp_op::ge, 3));
    specs.push_back(q);
  }
  {
    query_spec q;  // OR with NOT
    q.where = predicate_node::lor(
        leaf("x", db::cmp_op::eq, 5),
        predicate_node::lnot(leaf("y", db::cmp_op::lt, 2)));
    specs.push_back(q);
  }
  {
    query_spec q;  // sum aggregate
    q.where = leaf("x", db::cmp_op::lt, 32);
    q.agg = agg_kind::sum;
    q.agg_column = "y";
    specs.push_back(q);
  }
  return specs;
}

struct run_outcome {
  std::vector<std::uint64_t> digests;
  std::vector<std::uint64_t> gathered;
  std::vector<std::uint64_t> sums;
};

/// Runs the whole mix over already-open sessions (the last one is the
/// collector) and checks every result against the host reference.
run_outcome run_mix(const dataset& data,
                    std::vector<service::client_api*> sessions) {
  service::client_api* collector = sessions.back();
  sessions.pop_back();
  pim_table table(data.schema, data.x.rows(), sessions,
                  /*scratch_vectors=*/16);
  table.load("x", data.x);
  table.load("y", data.y);
  selection_gatherer gatherer(*collector);
  exec_options opts;
  opts.gather = &gatherer;

  run_outcome outcome;
  for (const query_spec& spec : query_mix()) {
    const query_result result = run_query(table, spec, opts);
    const bitvector expected = reference_selection(data, spec.where);
    EXPECT_EQ(result.selection, expected);
    EXPECT_EQ(result.matches, expected.popcount());
    if (spec.agg == agg_kind::sum) {
      EXPECT_EQ(result.sum, reference_sum(data, expected));
      outcome.sums.push_back(result.sum);
    }
    outcome.digests.push_back(result.digest);
    outcome.gathered.push_back(result.gathered_digest);
  }
  return outcome;
}

run_outcome run_in_process(const dataset& data, int shards, int partitions) {
  service::pim_service svc(small_config(shards, partitions + 1));
  svc.start();
  std::vector<std::unique_ptr<service::service_client>> clients;
  std::vector<service::client_api*> sessions;
  for (int p = 0; p < partitions + 1; ++p) {
    clients.push_back(std::make_unique<service::service_client>(svc));
    sessions.push_back(clients.back().get());
  }
  const run_outcome outcome = run_mix(data, std::move(sessions));
  svc.stop();
  return outcome;
}

TEST(query_engine, matches_reference_across_shard_counts) {
  // 1003 rows over 4 partitions: 251/251/251/250 — the last partition
  // is shorter, so boundary rows are exercised by construction.
  const dataset data(1003);
  const run_outcome one = run_in_process(data, 1, 4);
  const run_outcome two = run_in_process(data, 2, 4);
  const run_outcome four = run_in_process(data, 4, 4);
  EXPECT_EQ(one.digests, two.digests);
  EXPECT_EQ(one.digests, four.digests);
  EXPECT_EQ(one.gathered, two.gathered);
  EXPECT_EQ(one.gathered, four.gathered);
  EXPECT_EQ(one.sums, two.sums);
  EXPECT_EQ(one.sums, four.sums);
}

TEST(query_engine, matches_synchronous_bitweaving_scan) {
  // The executed task graph must reproduce db::evaluate — the same
  // lowering interpreted synchronously — bit for bit.
  const dataset data(777);
  const db::bitslice_storage storage(data.x);
  const db::predicate pred{db::cmp_op::between, 9, 33};

  service::pim_service svc(small_config(2, 3));
  svc.start();
  {
    std::vector<std::unique_ptr<service::service_client>> clients;
    std::vector<service::client_api*> sessions;
    for (int p = 0; p < 3; ++p) {
      clients.push_back(std::make_unique<service::service_client>(svc));
      sessions.push_back(clients.back().get());
    }
    pim_table table({{{"x", 6}}}, data.x.rows(), sessions, 16);
    table.load("x", data.x);
    query_spec spec;
    spec.where = predicate_node::leaf("x", pred);
    const query_result result = run_query(table, spec);
    EXPECT_EQ(result.selection, db::evaluate(storage, pred).selection);
    EXPECT_EQ(result.selection, db::evaluate_reference(data.x, pred));
  }
  svc.stop();
}

TEST(query_engine, remote_transport_matches_in_process) {
  const dataset data(512);
  const int partitions = 3;
  const run_outcome local = run_in_process(data, 2, partitions);

  net::server_config cfg;
  cfg.service = small_config(2, partitions + 1);
  net::pim_server server(cfg);
  server.start();
  run_outcome remote;
  {
    std::vector<std::unique_ptr<net::remote_client>> clients;
    std::vector<service::client_api*> sessions;
    for (int p = 0; p < partitions + 1; ++p) {
      clients.push_back(
          std::make_unique<net::remote_client>("127.0.0.1", server.port()));
      sessions.push_back(clients.back().get());
    }
    remote = run_mix(data, std::move(sessions));
  }
  server.stop();

  EXPECT_EQ(remote.digests, local.digests);
  EXPECT_EQ(remote.gathered, local.gathered);
  EXPECT_EQ(remote.sums, local.sums);
}

TEST(query_engine, rejects_plan_larger_than_scratch_pool) {
  const dataset data(256);
  service::pim_service svc(small_config(1, 2));
  svc.start();
  {
    service::service_client a(svc);
    service::service_client b(svc);
    pim_table table(data.schema, data.x.rows(), {&a, &b},
                    /*scratch_vectors=*/1);
    table.load("x", data.x);
    query_spec spec;
    spec.where = predicate_node::leaf("x", {db::cmp_op::lt, 17, 0});
    EXPECT_THROW(run_query(table, spec), std::invalid_argument);
  }
  svc.stop();
}

TEST(pim_table, validates_construction) {
  service::pim_service svc(small_config(1, 1));
  svc.start();
  {
    service::service_client only(svc);
    EXPECT_THROW(pim_table({{{"x", 0}}}, 100, {&only}, 4),
                 std::invalid_argument);
    EXPECT_THROW(pim_table({{{"x", 8}}}, 0, {&only}, 4),
                 std::invalid_argument);
    EXPECT_THROW(pim_table({}, 100, {&only}, 4), std::invalid_argument);

    pim_table table({{{"x", 4}}}, 100, {&only}, 4);
    db::column wrong_width;
    wrong_width.bit_width = 5;
    wrong_width.values.assign(100, 0);
    EXPECT_THROW(table.load("x", wrong_width), std::invalid_argument);
    db::column wrong_rows;
    wrong_rows.bit_width = 4;
    wrong_rows.values.assign(99, 0);
    EXPECT_THROW(table.load("x", wrong_rows), std::invalid_argument);
  }
  svc.stop();
}

}  // namespace
}  // namespace pim::query
