// DNA read pre-alignment filtering with in-DRAM bitwise operations —
// the bioinformatics use case the paper's introduction motivates
// (GateKeeper/Shouji-style): encode reads and candidate reference
// windows as bit vectors, XOR them in DRAM, and discard candidates
// whose mismatch count exceeds the edit-distance threshold before the
// expensive alignment stage.
//
//   $ ./examples/dna_prealign [reads=64] [read_len=10000] [threshold=120]
#include <iostream>

#include "common/config.h"
#include "core/pim_system.h"

namespace {

using namespace pim;

/// 2-bit base encoding (A=00, C=01, G=10, T=11) as a bit vector.
bitvector encode(const std::vector<std::uint8_t>& bases) {
  bitvector v(bases.size() * 2);
  for (std::size_t i = 0; i < bases.size(); ++i) {
    v.set(2 * i, bases[i] & 1);
    v.set(2 * i + 1, (bases[i] >> 1) & 1);
  }
  return v;
}

std::vector<std::uint8_t> random_read(std::size_t length, rng& gen) {
  std::vector<std::uint8_t> read(length);
  for (auto& base : read) {
    base = static_cast<std::uint8_t>(gen.next_below(4));
  }
  return read;
}

/// Mutates `count` random positions (substitutions).
std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> read,
                                 std::size_t count, rng& gen) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pos = gen.next_below(read.size());
    read[pos] = static_cast<std::uint8_t>((read[pos] + 1 +
                                           gen.next_below(3)) % 4);
  }
  return read;
}

}  // namespace

int main(int argc, char** argv) {
  const config cfg = config::from_args({argv + 1, argv + argc});
  const auto reads = static_cast<std::size_t>(cfg.get_int("reads", 64));
  const auto read_len =
      static_cast<std::size_t>(cfg.get_int("read_len", 10'000));
  const auto threshold =
      static_cast<std::size_t>(cfg.get_int("threshold", 120));

  core::pim_system sys;
  rng gen(31);

  // Candidate pool: half are true matches with few mutations, half are
  // decoys with many.
  picoseconds total_ps = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t wrong = 0;
  for (std::size_t r = 0; r < reads; ++r) {
    const auto reference_window = random_read(read_len, gen);
    const bool is_match = (r % 2) == 0;
    const std::size_t mutations = is_match ? threshold / 4 : threshold * 4;
    const auto candidate = mutate(reference_window, mutations, gen);

    auto vecs = sys.allocate(read_len * 2, 3);
    sys.write(vecs[0], encode(reference_window));
    sys.write(vecs[1], encode(candidate));
    // In-DRAM XOR marks every differing bit; a mismatching base sets
    // one or two bits of its 2-bit code.
    const core::op_report report =
        sys.execute(dram::bulk_op::xor_op, vecs[0], &vecs[1], vecs[2]);
    total_ps += report.latency;
    const std::size_t mismatch_bits = sys.read(vecs[2]).popcount();

    // Conservative filter: accept if mismatching bits could be within
    // the edit threshold (each edit flips at most 2 bits).
    const bool pass = mismatch_bits <= 2 * threshold;
    (pass ? accepted : rejected) += 1;
    if (pass != is_match) ++wrong;
  }

  std::cout << "pre-alignment filter over " << reads << " candidates of "
            << read_len << " bases\n";
  std::cout << "  accepted: " << accepted << ", rejected: " << rejected
            << ", misclassified: " << wrong << "\n";
  std::cout << "  in-DRAM filter time: " << static_cast<double>(total_ps) / 1e6
            << " us total ("
            << static_cast<double>(total_ps) / 1e3 /
                   static_cast<double>(reads)
            << " ns per candidate)\n";
  std::cout << "Rejected candidates never reach the O(n^2) aligner — the "
               "filter runs at DRAM-row rate.\n";
  return 0;
}
