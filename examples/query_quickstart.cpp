// Quickstart for the PIM-native query engine.
//
// Builds a two-column table partitioned over four sessions of a
// 2-shard service, then runs three declarative queries — a scan, a
// multi-column AND, and a sum aggregate — as asynchronous bank-
// parallel task graphs. Every result is checked against the scalar
// host reference; the exit code is the check.
//
// Usage: query_quickstart [rows=20000] [partitions=4] [shards=2]
#include <iostream>
#include <memory>

#include "common/config.h"
#include "query/exec.h"
#include "service/client.h"

int main(int argc, char** argv) {
  using namespace pim;

  const config cfg = config::from_args({argv + 1, argv + argc});
  const auto rows = static_cast<std::size_t>(cfg.get_int("rows", 20000));
  const int partitions = static_cast<int>(cfg.get_int("partitions", 4));
  const int shards = static_cast<int>(cfg.get_int("shards", 2));

  service::service_config svc_cfg;
  svc_cfg.shards = shards;
  svc_cfg.routing = service::shard_routing::range;
  svc_cfg.sessions_per_shard = static_cast<std::uint64_t>(
      std::max(1, partitions / shards));
  service::pim_service svc(svc_cfg);
  svc.start();
  bool ok = true;
  {
    // One session per partition: the table loads each column as
    // bit-sliced vectors into a co-located group on the session's
    // shard.
    std::vector<std::unique_ptr<service::service_client>> clients;
    std::vector<service::client_api*> sessions;
    for (int p = 0; p < partitions; ++p) {
      clients.push_back(std::make_unique<service::service_client>(svc));
      sessions.push_back(clients.back().get());
    }
    rng gen(7);
    const db::column price = db::random_column(rows, 8, gen);
    const db::column qty = db::random_column(rows, 4, gen);
    query::pim_table table({{{"price", 8}, {"qty", 4}}}, rows, sessions,
                           /*scratch_vectors=*/16);
    table.load("price", price);
    table.load("qty", qty);

    using query::predicate_node;
    auto leaf = [](const char* col, db::cmp_op op, std::uint32_t v,
                   std::uint32_t v2 = 0) {
      return predicate_node::leaf(col, {op, v, v2});
    };

    struct named_query {
      const char* text;
      query::query_spec spec;
    };
    std::vector<named_query> queries(3);
    queries[0].text = "count where price < 64";
    queries[0].spec.where = leaf("price", db::cmp_op::lt, 64);
    queries[1].text = "count where price between 50..180 and qty >= 8";
    queries[1].spec.where = predicate_node::land(
        leaf("price", db::cmp_op::between, 50, 180),
        leaf("qty", db::cmp_op::ge, 8));
    queries[2].text = "sum(qty) where price < 100";
    queries[2].spec.where = leaf("price", db::cmp_op::lt, 100);
    queries[2].spec.agg = query::agg_kind::sum;
    queries[2].spec.agg_column = "qty";

    for (const named_query& q : queries) {
      const query::query_result result = query::run_query(table, q.spec);

      // Scalar host reference.
      std::size_t expected_count = 0;
      std::uint64_t expected_sum = 0;
      for (std::size_t r = 0; r < rows; ++r) {
        const std::uint32_t p = price.values[r];
        const std::uint32_t v = qty.values[r];
        bool match = false;
        if (&q == &queries[0]) match = p < 64;
        if (&q == &queries[1]) match = p >= 50 && p <= 180 && v >= 8;
        if (&q == &queries[2]) match = p < 100;
        if (match) {
          ++expected_count;
          expected_sum += v;
        }
      }
      const bool correct =
          result.matches == expected_count &&
          (q.spec.agg != query::agg_kind::sum || result.sum == expected_sum);
      ok = ok && correct;
      std::cout << q.text << " -> " << result.matches << " rows";
      if (q.spec.agg == query::agg_kind::sum) {
        std::cout << ", sum " << result.sum;
      }
      std::cout << " (" << result.ops_submitted << " bulk ops over "
                << partitions << " partitions, "
                << (correct ? "correct" : "WRONG") << ")\n";
    }
  }
  // The simulated makespan depends on thread arrival timing relative
  // to the shard tick loops, so only the deterministic counters are
  // printed (two runs must produce byte-identical stdout).
  const service::service_stats stats = svc.stats();
  std::cout << "service: " << stats.sessions << " sessions, "
            << stats.tasks_submitted << " tasks\n";
  svc.stop();
  return ok ? 0 : 1;
}
