// Quickstart for the sharded PIM service front-end.
//
// Starts a 2-shard service, opens two client sessions (each pinned to
// a shard with all of its vectors), and runs a small bulk-op pipeline
// per client from its own thread — the minimal end-to-end tour of the
// service → runtime → dispatcher → DRAM stack.
#include <iostream>
#include <thread>

#include "service/client.h"

int main() {
  using namespace pim;

  service::service_config cfg;
  cfg.shards = 2;
  cfg.routing = service::shard_routing::range;
  cfg.sessions_per_shard = 1;  // tenant A -> shard 0, tenant B -> shard 1
  service::pim_service svc(cfg);
  svc.start();

  auto tenant = [&svc](std::uint64_t seed, const char* name) {
    service::service_client client(svc);
    const bits size = 64'000;
    auto v = client.allocate(size, 3);

    rng gen(seed);
    const bitvector a = bitvector::random(size, gen);
    const bitvector b = bitvector::random(size, gen);
    client.write(v[0], a);
    client.write(v[1], b);

    // Submit asynchronously; the shard's worker thread advances its
    // own simulated clock and completes the future.
    service::request_future f =
        client.submit_bulk(dram::bulk_op::xor_op, v[0], &v[1], v[2]);
    const runtime::task_report& report = f.get().report;

    const bool correct = client.read(v[2]) == (a ^ b);
    std::cout << name << ": shard " << client.shard_index() << ", "
              << runtime::to_string(report.where) << " backend, "
              << static_cast<double>(report.latency()) / 1e6 << " us, "
              << (correct ? "correct" : "WRONG") << "\n";
  };

  std::thread t1(tenant, 1, "tenant A");
  std::thread t2(tenant, 2, "tenant B");
  t1.join();
  t2.join();

  const service::service_stats stats = svc.stats();
  std::cout << "service: " << stats.sessions << " sessions, "
            << stats.tasks_submitted << " tasks, "
            << stats.requests_completed << " requests completed\n";
  svc.stop();
  return 0;
}
