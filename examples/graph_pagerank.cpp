// Graph analytics near memory: run PageRank on the Tesseract PIM
// system and on a conventional multicore, and report the ranks plus
// the performance/energy comparison.
//
//   $ ./examples/graph_pagerank [scale=16] [degree=8]
#include <algorithm>
#include <iostream>

#include "common/config.h"
#include "common/table.h"
#include "tesseract/baseline.h"
#include "tesseract/sim.h"

int main(int argc, char** argv) {
  using namespace pim;
  const config cfg = config::from_args({argv + 1, argv + argc});
  const int scale = static_cast<int>(cfg.get_int("scale", 18));
  const int degree = static_cast<int>(cfg.get_int("degree", 8));

  rng gen(123);
  const auto g =
      graph::rmat(scale, degree, gen, /*weighted=*/false, 0.45, 0.22, 0.22);
  std::cout << "R-MAT graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges\n\n";

  // Run the real algorithm on the Tesseract model.
  graph::pagerank pr(10);
  tesseract::tesseract_system tess;
  const auto tr = tess.run(pr, g);

  // The five highest-ranked vertices.
  std::vector<graph::vertex_id> order(g.num_vertices());
  for (graph::vertex_id v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](graph::vertex_id x, graph::vertex_id y) {
                      return pr.ranks()[x] > pr.ranks()[y];
                    });
  std::cout << "top vertices by rank:\n";
  for (int i = 0; i < 5; ++i) {
    std::cout << "  v" << order[static_cast<std::size_t>(i)] << "  rank "
              << pr.ranks()[order[static_cast<std::size_t>(i)]] << "\n";
  }

  // Conventional baseline (LLC scaled with the graph; see DESIGN.md).
  cpu::system_config base_cfg = tesseract::conventional_graph_system();
  base_cfg.llc = cpu::cache_config{"LLC", 1 * mib, 16, 64};
  graph::pagerank pr2(10);
  const auto br = tesseract::run_baseline(pr2, g, base_cfg);

  std::cout << "\nconventional multicore: "
            << static_cast<double>(br.run.time) / 1e9 << " ms,  "
            << br.run.energy.total() / 1e9 << " mJ\n";
  std::cout << "Tesseract (512 cores):  "
            << static_cast<double>(tr.time) / 1e9 << " ms,  "
            << tr.energy.total() / 1e9 << " mJ\n";
  std::cout << "speedup: "
            << format_double(static_cast<double>(br.run.time) /
                                 static_cast<double>(tr.time),
                             1)
            << "x,  energy reduction: "
            << format_double(
                   (1.0 - tr.energy.total() / br.run.energy.total()) * 100.0,
                   1)
            << "%\n";
  std::cout << "vault load imbalance: " << format_double(tr.imbalance, 2)
            << "x,  cross-cube messages: " << tr.cross_cube_calls << "\n";
  return 0;
}
