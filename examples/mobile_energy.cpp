// Consumer-device energy analysis: where a mobile SoC spends its
// energy on the four Google workloads, and what offloading the target
// functions to the memory stack's logic layer saves.
//
//   $ ./examples/mobile_energy
#include <iostream>

#include "common/table.h"
#include "consumer/workloads.h"

int main() {
  using namespace pim;
  using namespace pim::consumer;

  const auto host = cpu::mobile_soc();
  const auto pimc = cpu::pim_logic_core();

  table t({"workload", "host time (ms)", "host energy (mJ)",
           "data movement", "best PIM time (ms)", "best PIM energy (mJ)"});
  for (const auto& w : consumer_suite()) {
    const auto r = analyze_workload(w, host, pimc);
    const bool accel_better =
        r.pim_accel_energy.total() < r.pim_core_energy.total();
    const picoseconds best_time =
        accel_better ? r.pim_accel_time : r.pim_core_time;
    const double best_energy = accel_better ? r.pim_accel_energy.total()
                                            : r.pim_core_energy.total();
    t.row()
        .cell(r.workload)
        .cell(static_cast<double>(r.host_time) / 1e9)
        .cell(r.host_energy.total() / 1e9)
        .cell(format_double(r.data_movement_fraction() * 100.0, 1) + "%")
        .cell(static_cast<double>(best_time) / 1e9)
        .cell(best_energy / 1e9);
  }
  t.print(std::cout);

  const auto a = logic_layer_area();
  std::cout << "logic-layer budget check: a PIM core needs "
            << format_double(a.core_fraction * 100.0, 1)
            << "% of one vault's area; the full accelerator set needs "
            << format_double(a.accel_fraction * 100.0, 1) << "%.\n";
  std::cout << "Both fit comfortably — PIM for consumer devices is an "
               "area story, not just an energy story.\n";
  return 0;
}
