// Quickstart: allocate bulk bit vectors in simulated DRAM, run an
// in-memory AND via Ambit's triple-row activation, and compare against
// reading the data out over the memory channel.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/pim_system.h"

int main() {
  using namespace pim;

  // A single-channel DDR3-1600 module with Ambit-enabled subarrays.
  core::pim_system sys;

  // Three co-located 4 Mib vectors: two operands and a destination.
  const bits size = 4u * 1024 * 1024;
  auto vecs = sys.allocate(size, 3);

  rng gen(7);
  const bitvector a = bitvector::random(size, gen);
  const bitvector b = bitvector::random(size, gen);
  sys.write(vecs[0], a);
  sys.write(vecs[1], b);

  // d = a AND b, computed entirely inside the DRAM arrays.
  const core::op_report r =
      sys.execute(dram::bulk_op::and_op, vecs[0], &vecs[1], vecs[2]);

  const bitvector d = sys.read(vecs[2]);
  std::cout << "computed " << size << "-bit AND in "
            << ps_to_ns(r.latency) / 1000.0 << " us\n"
            << "  in-DRAM throughput: " << r.throughput_gbps << " GB/s\n"
            << "  command-stream energy: " << r.energy / 1e6 << " uJ\n"
            << "  result correct: " << std::boolalpha << (d == (a & b))
            << "\n";

  // The same data pulled over the channel would move 3x the vector
  // size at ~12.8 GB/s — the data-movement cost PIM avoids.
  const double channel_us =
      3.0 * static_cast<double>(size / 8) / 12.8 / 1e3;
  std::cout << "  channel-bound estimate: " << channel_us << " us ("
            << channel_us / (ps_to_ns(r.latency) / 1000.0)
            << "x slower)\n";
  return 0;
}
