// Database analytics on PIM: build a BitWeaving-V column and a bitmap
// index over a synthetic orders table, run predicate scans, and price
// them on the CPU and on Ambit.
//
//   $ ./examples/bitmap_analytics [rows=16777216]
#include <iostream>

#include "common/config.h"
#include "common/table.h"
#include "db/bitmap_index.h"
#include "db/query.h"

int main(int argc, char** argv) {
  using namespace pim;
  using namespace pim::db;
  const config cfg = config::from_args({argv + 1, argv + argc});
  const auto rows =
      static_cast<std::size_t>(cfg.get_int("rows", 16'777'216));

  std::cout << "orders table: " << rows << " rows\n\n";
  rng gen(11);

  // 'quantity' column: 10-bit values.
  const column quantity = random_column(rows, 10, gen);
  const bitslice_storage qty(quantity);

  std::cout << "Q1: SELECT COUNT(*) WHERE quantity < 24\n";
  const auto q1 = compare_scan(qty, predicate{cmp_op::lt, 24, 0});
  std::cout << "  matches: " << q1.matches << "  CPU "
            << static_cast<double>(q1.cpu_ps) / 1e6 << " us, Ambit "
            << static_cast<double>(q1.ambit_ps) / 1e6 << " us  ("
            << format_double(q1.speedup(), 1) << "x)\n\n";

  std::cout << "Q2: SELECT COUNT(*) WHERE 100 <= quantity <= 200\n";
  const auto q2 = compare_scan(qty, predicate{cmp_op::between, 100, 200});
  std::cout << "  matches: " << q2.matches << "  CPU "
            << static_cast<double>(q2.cpu_ps) / 1e6 << " us, Ambit "
            << static_cast<double>(q2.ambit_ps) / 1e6 << " us  ("
            << format_double(q2.speedup(), 1) << "x)\n\n";

  // 'status' column: cardinality 8, served by a bitmap index.
  const column status = random_column(rows, 3, gen);
  const bitmap_index index(status, 8);
  std::cout << "Q3: SELECT COUNT(*) WHERE status IN ('new','paid','held')\n";
  const auto sel = index.query_in({0, 2, 5});
  const auto cpu_ps = cpu_scan_latency(rows, 8, sel.ops);
  const auto ambit_ps = ambit_scan_latency(rows, sel.ops);
  std::cout << "  matches: " << sel.selection.popcount() << "  CPU "
            << static_cast<double>(cpu_ps) / 1e6 << " us, Ambit "
            << static_cast<double>(ambit_ps) / 1e6 << " us  ("
            << format_double(static_cast<double>(cpu_ps) /
                                 static_cast<double>(ambit_ps),
                             1)
            << "x)\n\n";

  std::cout << "Ambit executes each bulk Boolean op at row granularity "
               "inside the DRAM banks,\nso scan latency stays flat while "
               "CPU scans fall off the cache cliff.\n";
  return 0;
}
