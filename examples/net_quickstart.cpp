// Quickstart for the networked PIM service.
//
// Connects to a running pim_serverd, drives a deterministic synthetic
// client chain over the socket with remote_client, and — because the
// chain's digest is a pure function of its config — checks the remote
// digest bit for bit against the same chain driven through an
// in-process service_client on a local single-shard service. The
// digest equality is the whole point: transport must never change
// results.
//
// Usage: net_quickstart port=7321 [host=127.0.0.1] [ops=24]
// Exit code 0 = digests match; 1 = mismatch; 2 = usage/connect error.
#include <iostream>

#include "common/config.h"
#include "net/client.h"
#include "service/synthetic.h"

int main(int argc, char** argv) {
  using namespace pim;

  config cfg;
  try {
    cfg = config::from_args({argv + 1, argv + argc});
  } catch (const std::exception& e) {
    std::cerr << "net_quickstart: " << e.what() << "\n";
    return 2;
  }
  const std::string host = cfg.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cfg.get_int("port", 7321));

  service::synthetic_config chain;
  chain.ops = static_cast<int>(cfg.get_int("ops", 24));
  chain.groups = 4;
  chain.vector_bits = 4 * 8192;
  chain.seed = 42;

  // Remote run: pipelined submits over the wire, responses completing
  // out of order as the server's shard clocks advance.
  std::uint64_t remote_digest = 0;
  try {
    net::remote_client client(host, port);
    const service::client_outcome outcome =
        service::run_synthetic_client(client, chain);
    remote_digest = outcome.digest;
    client.barrier();  // server-side drain before we read stats
    std::cout << "remote : session " << outcome.session << " on shard "
              << outcome.shard << ", " << outcome.tasks
              << " pipelined ops, digest 0x" << std::hex << remote_digest
              << std::dec << "\n";
  } catch (const std::exception& e) {
    std::cerr << "net_quickstart: remote run failed: " << e.what() << "\n";
    return 2;
  }

  // Local reference: the same chain through the in-process client.
  service::service_config local;
  local.shards = 1;
  service::pim_service svc(local);
  svc.start();
  const service::client_outcome reference =
      service::run_synthetic_client(svc, chain);
  svc.stop();
  std::cout << "local  : digest 0x" << std::hex << reference.digest
            << std::dec << "\n";

  const bool match = remote_digest == reference.digest;
  std::cout << "digests " << (match ? "match" : "DIFFER") << "\n";
  return match ? 0 : 1;
}
