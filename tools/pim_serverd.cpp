// pim_serverd: standalone networked PIM service.
//
// Binds a pim_server on loopback (or a given host) and serves the
// wire protocol until SIGINT/SIGTERM. Out-of-process clients connect
// with net::remote_client (see examples/net_quickstart.cpp) or any
// implementation of the framing in src/net/protocol.h.
//
// Usage (key=value arguments, common/config.h conventions):
//   pim_serverd port=7321 shards=4
//   pim_serverd port=0 port_file=port.txt    # ephemeral port, written
//                                            # to the file once bound
//                                            # (how the CI smoke test
//                                            # rendezvouses)
// Keys: host, port, port_file, shards, routing (hash|range),
//       sessions_per_shard, queue (per-session admission bound),
//       trace (path: enable tracing at startup, write Chrome trace
//       JSON there on shutdown; clients can also toggle the tracer
//       at runtime with the trace_ctl wire op).
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/config.h"
#include "net/server.h"
#include "obs/trace.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace pim;

  config cfg;
  try {
    cfg = config::from_args({argv + 1, argv + argc});
  } catch (const std::exception& e) {
    std::cerr << "pim_serverd: " << e.what() << "\n";
    return 2;
  }

  net::server_config server_cfg;
  server_cfg.host = cfg.get_string("host", "127.0.0.1");
  server_cfg.port = static_cast<std::uint16_t>(cfg.get_int("port", 7321));
  server_cfg.service.shards = static_cast<int>(cfg.get_int("shards", 4));
  server_cfg.service.routing =
      cfg.get_string("routing", "hash") == "range"
          ? service::shard_routing::range
          : service::shard_routing::hash;
  server_cfg.service.sessions_per_shard =
      static_cast<std::uint64_t>(cfg.get_int("sessions_per_shard", 64));
  server_cfg.service.shard.session_queue_capacity =
      static_cast<std::size_t>(cfg.get_int("queue", 64));

  const std::string trace_path = cfg.get_string("trace", "");
  if (!trace_path.empty()) obs::tracer::instance().enable();

  net::pim_server server(server_cfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "pim_serverd: " << e.what() << "\n";
    return 1;
  }

  const std::string port_file = cfg.get_string("port_file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
  }
  std::cout << "pim_serverd: listening on " << server_cfg.host << ":"
            << server.port() << " (" << server_cfg.service.shards
            << " shards)\n"
            << std::flush;

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "pim_serverd: shutting down\n";
  server.stop();
  if (!trace_path.empty()) {
    try {
      obs::tracer::instance().write_chrome_json(trace_path);
      std::cout << "pim_serverd: trace written to " << trace_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "pim_serverd: trace dump failed: " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}
