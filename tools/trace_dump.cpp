// trace_dump: remote control of a pim_serverd's tracer and metrics.
//
// Connects to a running server over the wire protocol and drives the
// trace_ctl / get_metrics opcodes:
//
//   trace_dump port=7321 cmd=enable           # start recording
//   trace_dump port=7321 cmd=dump out=t.json  # fetch trace, write file
//   trace_dump port=7321 cmd=disable
//   trace_dump port=7321 cmd=clear
//   trace_dump port=7321 cmd=metrics out=m.json
//
// `dump` fetches the Chrome trace JSON inline over the wire and writes
// it locally (out= defaults to stdout), so the trace lands next to the
// operator, not in the server's working directory. `metrics` fetches
// the server process's metrics-registry snapshot plus service stats.
#include <fstream>
#include <iostream>

#include "common/config.h"
#include "net/client.h"

namespace {

int write_out(const std::string& path, const std::string& body) {
  if (path.empty()) {
    std::cout << body << "\n";
    return 0;
  }
  std::ofstream out(path, std::ios::binary);
  out << body;
  if (!out) {
    std::cerr << "trace_dump: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "trace_dump: wrote " << body.size() << " bytes to " << path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pim;

  config cfg;
  try {
    cfg = config::from_args({argv + 1, argv + argc});
  } catch (const std::exception& e) {
    std::cerr << "trace_dump: " << e.what() << "\n";
    return 2;
  }

  const std::string host = cfg.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cfg.get_int("port", 7321));
  const std::string cmd = cfg.get_string("cmd", "dump");
  const std::string out = cfg.get_string("out", "");

  try {
    net::remote_client client(host, port);
    if (cmd == "enable") {
      client.trace_enable();
      std::cout << "trace_dump: tracing enabled\n";
    } else if (cmd == "disable") {
      const std::uint64_t events = client.trace_disable();
      std::cout << "trace_dump: tracing disabled (" << events
                << " events buffered)\n";
    } else if (cmd == "clear") {
      client.trace_clear();
      std::cout << "trace_dump: trace buffer cleared\n";
    } else if (cmd == "dump") {
      std::string json;
      const std::uint64_t events = client.trace_dump("", &json);
      std::cerr << "trace_dump: " << events << " events\n";
      return write_out(out, json);
    } else if (cmd == "metrics") {
      return write_out(out, client.metrics_json());
    } else {
      std::cerr << "trace_dump: unknown cmd '" << cmd
                << "' (enable|disable|dump|clear|metrics)\n";
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << "trace_dump: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
