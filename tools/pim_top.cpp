// pim_top: terminal dashboard over a live pim_serverd.
//
// Subscribes to the server's streaming telemetry (the `watch_stats`
// wire op) and folds the delta pushes into a cumulative view: per-
// shard queue depth / inflight tasks / busy-bank utilization, service
// latency percentiles, top sessions by request count, and the wire's
// own byte counters. The default mode redraws an ANSI dashboard at
// the push interval; `once=1` prints a single machine-readable
// snapshot and exits (the CI smoke mode); `format=openmetrics` emits
// the snapshot as Prometheus/OpenMetrics text exposition instead
// (point a file_sd scraper at `pim_top once=1 format=openmetrics`).
//
// Usage (key=value arguments, common/config.h conventions):
//   pim_top port=7321                        # live dashboard, 1s
//   pim_top port=7321 interval=250 count=20  # 20 redraws, then exit
//   pim_top port=7321 once=1                 # one snapshot, plain
//   pim_top port=7321 once=1 format=openmetrics
//   pim_top port=7321 slow_threshold_ns=5000000  # also arm the
//                                            # server's slow-request
//                                            # log at 5 ms
// Keys: host, port, interval (ms), count (0 = until SIGINT), once,
//       format (plain|openmetrics), slow_threshold_ns (-1 = leave).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>

#include "common/config.h"
#include "net/client.h"
#include "obs/metrics.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

/// The folded cumulative view of the delta stream.
struct stats_view {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, pim::net::stats_push_resp::hist_entry> hists;

  void fold(const pim::net::stats_push_resp& push) {
    for (const auto& [name, v] : push.counters) counters[name] = v;
    for (const auto& [name, v] : push.gauges) gauges[name] = v;
    for (const auto& h : push.hists) hists[h.name] = h;
  }

  std::uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  std::int64_t gauge(const std::string& name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }
};

/// `key value` lines, one metric per line — the machine-readable
/// `once=1` output CI greps.
std::string render_plain(const stats_view& view) {
  std::ostringstream out;
  for (const auto& [name, v] : view.counters) out << name << " " << v << "\n";
  for (const auto& [name, v] : view.gauges) out << name << " " << v << "\n";
  for (const auto& [name, h] : view.hists) {
    out << name << ".count " << h.count << "\n";
    out << name << ".p50 " << h.p50 << "\n";
    out << name << ".p95 " << h.p95 << "\n";
    out << name << ".p99 " << h.p99 << "\n";
  }
  return out.str();
}

/// Prometheus/OpenMetrics text exposition of the folded view — the
/// same dialect obs::openmetrics emits for an in-process registry
/// snapshot, rebuilt here from the wire's percentile summaries.
std::string render_openmetrics(const stats_view& view) {
  std::ostringstream out;
  const std::string prefix = "pim";
  for (const auto& [name, v] : view.counters) {
    const std::string metric = prefix + "_" + pim::obs::sanitize_metric_name(name);
    out << "# TYPE " << metric << " counter\n";
    out << metric << "_total " << v << "\n";
  }
  for (const auto& [name, v] : view.gauges) {
    const std::string metric = prefix + "_" + pim::obs::sanitize_metric_name(name);
    out << "# TYPE " << metric << " gauge\n";
    out << metric << " " << v << "\n";
  }
  for (const auto& [name, h] : view.hists) {
    const std::string metric = prefix + "_" + pim::obs::sanitize_metric_name(name);
    out << "# TYPE " << metric << " summary\n";
    out << metric << "_count " << h.count << "\n";
    out << metric << "{quantile=\"0.5\"} " << h.p50 << "\n";
    out << metric << "{quantile=\"0.95\"} " << h.p95 << "\n";
    out << metric << "{quantile=\"0.99\"} " << h.p99 << "\n";
  }
  out << "# EOF\n";
  return out.str();
}

std::string render_dashboard(const stats_view& view, std::uint64_t seq) {
  std::ostringstream out;
  out << "\x1b[2J\x1b[H";  // clear + home
  out << "pim_top  push #" << seq << "\n\n";

  out << "service: sessions=" << view.gauge("service.sessions")
      << " completed=" << view.counter("service.requests_completed")
      << " failed=" << view.counter("service.requests_failed")
      << " output=" << view.counter("service.output_bytes") << "B"
      << " ticks=" << view.counter("service.total_ticks")
      << " energy=" << view.counter("service.energy_pj") << "pJ\n";
  out << "moved: insitu=" << view.counter("service.moved_bytes_insitu")
      << "B offchip=" << view.counter("service.moved_bytes_offchip")
      << "B wire=" << view.counter("service.moved_bytes_wire") << "B\n";
  auto lat = view.hists.find("service.latency_ns");
  if (lat != view.hists.end()) {
    out << "latency: count=" << lat->second.count
        << " p50=" << lat->second.p50 / 1e6 << "ms"
        << " p95=" << lat->second.p95 / 1e6 << "ms"
        << " p99=" << lat->second.p99 / 1e6 << "ms\n";
  }
  out << "net: server rx=" << view.counter("net.server.rx_bytes")
      << "B tx=" << view.counter("net.server.tx_bytes")
      << "B frames=" << view.counter("net.server.rx_frames") << "\n";
  out << "slow requests observed: "
      << view.counter("service.slow_requests_observed") << "\n";

  // Wait-state attribution: the five classes partition aggregate task
  // lifetime exactly, so the shares below always total 100%.
  const std::uint64_t lifetime = view.counter("service.task_lifetime_ps");
  out << "waits:";
  if (lifetime == 0) {
    out << " (no completed tasks yet)\n\n";
  } else {
    const std::pair<const char*, const char*> states[] = {
        {"admission", "service.wait_admission_ps"},
        {"hazard", "service.wait_hazard_ps"},
        {"bank", "service.wait_bank_ps"},
        {"exec", "service.exec_ps"},
        {"wire", "service.wire_ps"},
    };
    for (const auto& [label, name] : states) {
      const std::uint64_t v = view.counter(name);
      out << " " << label << "=" << v << "ps(" << (v * 100 / lifetime)
          << "%)";
    }
    out << "\n\n";
  }

  out << "shard  queue  inflight  sessions  busy-banks  energy-pJ\n";
  for (int s = 0;; ++s) {
    const std::string prefix = "service.shard." + std::to_string(s) + ".";
    if (view.gauges.find(prefix + "queue_depth") == view.gauges.end()) break;
    out << "  " << s << "     " << view.gauge(prefix + "queue_depth")
        << "      " << view.gauge(prefix + "inflight_tasks") << "         "
        << view.gauge(prefix + "sessions") << "         "
        << view.gauge(prefix + "busy_banks_x1000") / 1000.0 << "       "
        << view.gauge(prefix + "energy_pj") << "\n";
  }

  out << "\ntop sessions (by requests):\n";
  for (int k = 0; k < 5; ++k) {
    const std::string slot = "service.top." + std::to_string(k);
    if (view.gauges.find(slot + ".session") == view.gauges.end()) break;
    out << "  session " << view.gauge(slot + ".session") << ": "
        << view.gauge(slot + ".requests") << " requests, p99 "
        << view.gauge(slot + ".p99_ns") / 1e6 << "ms\n";
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pim;

  config cfg;
  try {
    cfg = config::from_args({argv + 1, argv + argc});
  } catch (const std::exception& e) {
    std::cerr << "pim_top: " << e.what() << "\n";
    return 2;
  }

  const std::string host = cfg.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cfg.get_int("port", 7321));
  const bool once = cfg.get_bool("once", false);
  const std::string format = cfg.get_string("format", "plain");
  const auto interval =
      static_cast<std::uint32_t>(cfg.get_int("interval", 1000));
  const int count = static_cast<int>(cfg.get_int("count", 0));
  const std::int64_t slow_threshold_ns = cfg.get_int("slow_threshold_ns", -1);
  const bool openmetrics = format == "openmetrics";
  if (!openmetrics && format != "plain") {
    std::cerr << "pim_top: unknown format " << format
              << " (plain|openmetrics)\n";
    return 2;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    net::remote_client client(host, port);

    std::mutex mu;
    std::condition_variable cv;
    stats_view view;
    std::uint64_t pushes = 0;

    client.watch_stats(
        // once=1 needs exactly the seq-0 full snapshot; a long
        // interval keeps the server from racing a second push in.
        once ? 60'000 : interval,
        [&](const net::stats_push_resp& push) {
          std::lock_guard<std::mutex> lock(mu);
          view.fold(push);
          ++pushes;
          cv.notify_all();
        },
        slow_threshold_ns);

    std::unique_lock<std::mutex> lock(mu);
    std::uint64_t rendered = 0;
    for (;;) {
      cv.wait_for(lock, std::chrono::milliseconds(200),
                  [&] { return pushes > rendered; });
      if (pushes > rendered) {
        rendered = pushes;
        if (once) {
          std::cout << (openmetrics ? render_openmetrics(view)
                                    : render_plain(view));
          break;
        }
        if (openmetrics) {
          std::cout << render_openmetrics(view) << "\n";
        } else {
          std::cout << render_dashboard(view, rendered) << std::flush;
        }
        if (count > 0 && rendered >= static_cast<std::uint64_t>(count)) break;
      }
      if (g_stop.load()) break;
    }
    lock.unlock();
    client.unwatch_stats();
  } catch (const std::exception& e) {
    std::cerr << "pim_top: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
