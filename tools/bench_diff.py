#!/usr/bin/env python3
"""Compare BENCH_*.json emitted by two runs and flag perf regressions.

Usage: bench_diff.py PREV_DIR CURR_DIR [--threshold PCT]

Walks every BENCH_*.json present in both directories, pairs numeric
leaves by their JSON path, and reports the classified performance
metrics side by side. A metric is flagged as a regression when it moves
against its good direction by more than the threshold (default 10%).

Two classes of metric, two severities:

- Wall-clock metrics (throughput, speedup, latency) are ADVISORY:
  machine variance makes a hard gate on them counterproductive, so
  they are reported in the summary but never affect the exit code.
- Simulated-clock metrics (total_ticks, busy_bank_ticks, and the
  energy meter's energy_pj / moved_bytes_*) are a HARD GATE: they are
  machine-independent, so drift beyond the per-metric tolerance means
  the simulated behavior itself changed (pricing, scheduling,
  batching) and the diff exits nonzero. The tolerances absorb the
  scheduling jitter of the threaded service benches (request arrival
  timing shifts task overlap, which moves total_ticks a few percent
  run to run while busy_bank_ticks stays within a fraction of a
  percent); a pricing-model regression moves both by integer factors
  and cannot hide inside them.

When PROFILE_query.json is present in both directories, its per-op
attributed-tick and energy trajectories are compared too — advisory
only (tick splits shift with scheduling overlap), but they localize a
pricing or lowering change to the plan op that moved.

When CRITPATH_query.json is present in both directories, each scaling
point's dominant wait state and per-state critical-path shares are
compared — advisory, like the tick splits — while the exactness
booleans (segment partition, identity projection, in-process wire
identity) are hard-gated: a true -> false flip fails the diff.

Rebaselining: a change that intentionally alters simulated behavior
(e.g. the lowering emitting fewer ops) trips the hard gate against the
previous run's artifacts exactly once. --accept-sim-changes REASON
downgrades sim failures to accepted-and-reported for that run; CI
passes it only when BENCH_REBASELINE.md exists at the repo root, and
the file is expected to be deleted by the next change so the gate
re-arms.

Output is GitHub-flavored markdown meant for $GITHUB_STEP_SUMMARY.
Exit code: 1 when a simulated-clock metric drifted beyond tolerance
(and the drift was not accepted), 0 otherwise.

Stdlib only: runs on a bare CI image.
"""

import argparse
import json
import os
import sys

# Good-direction classification by the leaf key name. Keys not listed
# are ignored (counters, configuration echoes, wall-clock noise).
HIGHER_BETTER_SUFFIXES = (
    "gbps",
    "speedup",
    "gain",
    "throughput",
    "avg_busy_banks",
)
LOWER_BETTER_SUFFIXES = (
    "makespan_us",
    "latency_us",
    "latency_ns",
)
# Simulated-clock metrics are machine-independent: drift beyond the
# per-metric tolerance (percent) means the simulated behavior changed
# and hard-fails the diff. total_ticks measures the busy-time union,
# which shifts with task overlap (thread arrival timing) in the
# threaded service benches; busy_bank_ticks is work-proportional and
# much tighter. Single-threaded benches (bench_runtime) reproduce both
# exactly, so any within-tolerance drift there is still worth a look
# in the summary.
#
# The energy meter's metrics (energy_pj and the moved-bytes ledger)
# are per-task deterministic — no overlap accounting at all — so they
# reproduce bit-identically run to run at a fixed workload; the small
# tolerance only covers scenarios whose task mix itself is timing-
# dependent (migration counts in the skew drain). A pricing change
# moves them by integer factors and cannot hide inside it.
SIM_SUFFIXES = (
    "total_ticks",
    "busy_bank_ticks",
    "energy_pj",
    "moved_bytes_insitu",
    "moved_bytes_offchip",
    "moved_bytes_wire",
)
SIM_TOLERANCE_PCT = {
    "total_ticks": 25.0,
    "busy_bank_ticks": 5.0,
    "energy_pj": 5.0,
    "moved_bytes_insitu": 5.0,
    "moved_bytes_offchip": 5.0,
    "moved_bytes_wire": 5.0,
}


def classify(key: str):
    k = key.lower()
    for s in SIM_SUFFIXES:
        if k.endswith(s):
            return "sim"
    for s in HIGHER_BETTER_SUFFIXES:
        if k.endswith(s):
            return "higher"
    for s in LOWER_BETTER_SUFFIXES:
        if k.endswith(s):
            return "lower"
    return None


def numeric_leaves(node, path=""):
    """Yields (path, value) for every classified numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from numeric_leaves(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from numeric_leaves(value, f"{path}[{i}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        key = path.rsplit(".", 1)[-1].split("[", 1)[0]
        if classify(key) is not None:
            yield path, float(node)


def diff_file(name, prev, curr, threshold):
    """Returns (advisory_regressions, sim_failures) for one file."""
    prev_leaves = dict(numeric_leaves(prev))
    curr_leaves = dict(numeric_leaves(curr))
    rows = []
    regressions = 0
    sim_failures = 0
    for path in sorted(set(prev_leaves) & set(curr_leaves)):
        key = path.rsplit(".", 1)[-1].split("[", 1)[0]
        direction = classify(key)
        p, c = prev_leaves[path], curr_leaves[path]
        if p == 0 and c == 0:
            continue
        delta = (c - p) / abs(p) * 100.0 if p != 0 else float("inf")
        if direction == "sim":
            tolerance = next(SIM_TOLERANCE_PCT[s] for s in SIM_SUFFIXES
                             if key.lower().endswith(s))
            if abs(delta) > tolerance:
                status = "**SIM-CHANGED (gate)**"
                sim_failures += 1
            elif p != c:
                status = "sim-drift (in tolerance)"
            else:
                status = "ok"
            rows.append((path, p, c, delta, status))
            continue
        bad = delta < -threshold if direction == "higher" else delta > threshold
        good = delta > threshold if direction == "higher" else delta < -threshold
        status = "ok"
        if bad:
            status = "**REGRESSION**"
            regressions += 1
        elif good:
            status = "improved"
        rows.append((path, p, c, delta, status))
    if not rows:
        return regressions, sim_failures
    print(f"\n### {name}\n")
    print("| metric | previous | current | delta | status |")
    print("|--------|----------|---------|-------|--------|")
    for path, p, c, delta, status in rows:
        print(f"| `{path}` | {p:.4g} | {c:.4g} | {delta:+.1f}% | {status} |")
    return regressions, sim_failures


PROFILE_FILE = "PROFILE_query.json"


def diff_profile(prev, curr):
    """Advisory per-op comparison of the explain_analyze profile.

    Pairs plan ops by (config, step, label) and reports attributed
    ticks and energy that moved. Never gates: tick splits legitimately
    shift with scheduling overlap across runs; the value is seeing
    WHICH op a pricing or lowering change landed on.
    """
    def op_map(doc):
        out = {}
        for cfg in doc.get("configs", []):
            cid = f"shards={cfg.get('shards')},remote={cfg.get('remote')}"
            for op in cfg.get("ops", []):
                out[(cid, op.get("step"), op.get("label"))] = op
        return out

    prev_ops = op_map(prev)
    curr_ops = op_map(curr)
    rows = []
    for key in sorted(set(prev_ops) & set(curr_ops),
                      key=lambda k: (k[0], k[1] if k[1] is not None else 0)):
        p, c = prev_ops[key], curr_ops[key]
        for metric in ("attributed_ticks", "energy_pj"):
            pv, cv = p.get(metric), c.get(metric)
            if not isinstance(pv, (int, float)) or isinstance(pv, bool):
                continue
            if not isinstance(cv, (int, float)) or isinstance(cv, bool):
                continue
            if pv == cv:
                continue
            delta = (cv - pv) / abs(pv) * 100.0 if pv else float("inf")
            rows.append((key[0], key[1], key[2], metric, pv, cv, delta))
    print(f"\n### {PROFILE_FILE} (advisory: per-op attribution)\n")
    if not rows:
        print("Per-op attributed ticks and energy unchanged.")
        return
    print("| config | op | metric | previous | current | delta |")
    print("|--------|----|--------|----------|---------|-------|")
    for cid, step, label, metric, pv, cv, delta in rows:
        print(f"| {cid} | {step}: `{label}` | {metric} "
              f"| {pv:.4g} | {cv:.4g} | {delta:+.1f}% |")
    print("\nAdvisory only: per-op tick splits shift with scheduling "
          "overlap and never affect the exit code.")


CRITPATH_FILE = "CRITPATH_query.json"


def diff_critpath(prev, curr):
    """Critical-path comparison: advisory wait shares, gated exactness.

    Per scaling point (config), the dominant wait state and each
    state's share of the critical-path span are reported side by side —
    advisory only, since overlap timing legitimately moves the split
    between runs. The exactness booleans (segment partition, identity
    projection, in-process wire identity) are machine-independent
    invariants, so any true -> false flip is a hard gate failure.

    Returns the number of gate failures.
    """
    failures = 0
    for flag in ("exact", "projection_identity", "wire_identity_inproc"):
        if prev.get(flag) is True and curr.get(flag) is False:
            print(f"\n**CRITPATH gate: `{flag}` flipped true -> false.**")
            failures += 1

    def cfg_map(doc):
        return {f"shards={c.get('shards')},remote={c.get('remote')}": c
                for c in doc.get("configs", [])}

    prev_cfgs = cfg_map(prev)
    curr_cfgs = cfg_map(curr)
    rows = []
    for cid in sorted(set(prev_cfgs) & set(curr_cfgs)):
        p, c = prev_cfgs[cid], curr_cfgs[cid]
        p_span = p.get("span_ps") or 0
        c_span = c.get("span_ps") or 0
        states = sorted(set(p.get("state_ps", {})) | set(c.get("state_ps", {})))
        for state in states:
            p_share = (p.get("state_ps", {}).get(state, 0) / p_span * 100.0
                       if p_span else 0.0)
            c_share = (c.get("state_ps", {}).get(state, 0) / c_span * 100.0
                       if c_span else 0.0)
            if abs(p_share - c_share) < 0.05:
                continue
            rows.append((cid, state, p_share, c_share))
    print(f"\n### {CRITPATH_FILE} (advisory: wait-state shares; "
          f"exactness gated)\n")
    for cid in sorted(set(prev_cfgs) & set(curr_cfgs)):
        p, c = prev_cfgs[cid], curr_cfgs[cid]
        if p.get("dominant") != c.get("dominant"):
            print(f"- {cid}: dominant wait moved "
                  f"`{p.get('dominant')}` -> `{c.get('dominant')}`")
    if not rows:
        print("Critical-path wait-state shares unchanged.")
        return failures
    print("| config | state | previous share | current share | delta |")
    print("|--------|-------|----------------|---------------|-------|")
    for cid, state, p_share, c_share in rows:
        print(f"| {cid} | {state} | {p_share:.1f}% | {c_share:.1f}% "
              f"| {c_share - p_share:+.1f}pp |")
    print("\nShares are advisory: overlap timing moves the split between "
          "runs. Only the exactness booleans gate.")
    return failures


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("prev_dir")
    parser.add_argument("curr_dir")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="flag moves beyond this percentage")
    parser.add_argument("--accept-sim-changes", metavar="REASON", default=None,
                        help="report simulated-clock drift but exit 0, "
                             "recording REASON in the summary")
    args = parser.parse_args()

    prev_files = {f for f in os.listdir(args.prev_dir)
                  if f.startswith("BENCH_") and f.endswith(".json")}
    curr_files = {f for f in os.listdir(args.curr_dir)
                  if f.startswith("BENCH_") and f.endswith(".json")}
    common = sorted(prev_files & curr_files)

    print("## Benchmark diff vs previous run")
    if not common:
        print("\nNo benchmark files in common; nothing to compare.")
        return 0

    total = 0
    sim_failures = 0
    for name in common:
        try:
            with open(os.path.join(args.prev_dir, name)) as f:
                prev = json.load(f)
            with open(os.path.join(args.curr_dir, name)) as f:
                curr = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"\n`{name}`: unreadable ({e})")
            continue
        regressed, failed = diff_file(name, prev, curr, args.threshold)
        total += regressed
        sim_failures += failed

    prof_prev = os.path.join(args.prev_dir, PROFILE_FILE)
    prof_curr = os.path.join(args.curr_dir, PROFILE_FILE)
    if os.path.exists(prof_prev) and os.path.exists(prof_curr):
        try:
            with open(prof_prev) as f:
                prev = json.load(f)
            with open(prof_curr) as f:
                curr = json.load(f)
            diff_profile(prev, curr)
        except (OSError, json.JSONDecodeError) as e:
            print(f"\n`{PROFILE_FILE}`: unreadable ({e})")

    crit_prev = os.path.join(args.prev_dir, CRITPATH_FILE)
    crit_curr = os.path.join(args.curr_dir, CRITPATH_FILE)
    if os.path.exists(crit_prev) and os.path.exists(crit_curr):
        try:
            with open(crit_prev) as f:
                prev = json.load(f)
            with open(crit_curr) as f:
                curr = json.load(f)
            sim_failures += diff_critpath(prev, curr)
        except (OSError, json.JSONDecodeError) as e:
            print(f"\n`{CRITPATH_FILE}`: unreadable ({e})")

    only_new = sorted(curr_files - prev_files)
    if only_new:
        print(f"\nNew benchmarks (no baseline): {', '.join(only_new)}")
    print()
    if sim_failures and args.accept_sim_changes is not None:
        print(f"**{sim_failures} simulated-clock metric(s) drifted beyond "
              f"tolerance — accepted as an intentional rebaseline:** "
              f"{args.accept_sim_changes}")
        sim_failures = 0
    elif sim_failures:
        print(f"**{sim_failures} simulated-clock metric(s) drifted beyond "
              f"tolerance — the simulated behavior changed. This gate is "
              f"hard; rebaseline only with an explanation.**")
    if total:
        print(f"**{total} wall-clock metric(s) regressed beyond the "
              f"{args.threshold:.0f}% threshold (advisory).**")
    if not sim_failures and not total:
        print(f"No regressions beyond the {args.threshold:.0f}% threshold; "
              f"simulated-clock metrics within tolerance.")
    return 1 if sim_failures else 0


if __name__ == "__main__":
    sys.exit(main())
