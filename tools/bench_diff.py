#!/usr/bin/env python3
"""Compare BENCH_*.json emitted by two runs and flag perf regressions.

Usage: bench_diff.py PREV_DIR CURR_DIR [--threshold PCT]

Walks every BENCH_*.json present in both directories, pairs numeric
leaves by their JSON path, and reports the classified performance
metrics side by side. A metric is flagged as a regression when it moves
against its good direction by more than the threshold (default 10%).

Output is GitHub-flavored markdown meant for $GITHUB_STEP_SUMMARY. The
exit code is always 0: the diff is advisory (wall-clock noise and
machine variance make a hard gate counterproductive), the summary is
the signal.

Stdlib only: runs on a bare CI image.
"""

import argparse
import json
import os
import sys

# Good-direction classification by the leaf key name. Keys not listed
# are ignored (counters, configuration echoes, wall-clock noise).
HIGHER_BETTER_SUFFIXES = (
    "gbps",
    "speedup",
    "gain",
    "throughput",
    "avg_busy_banks",
)
LOWER_BETTER_SUFFIXES = (
    "makespan_us",
    "latency_us",
    "latency_ns",
    "energy_pj",
)
# Simulated-clock metrics are deterministic for a fixed workload and
# identical across machines: any drift at all means the simulated
# behavior changed (scheduling, batching, pricing), never noise. They
# are compared exactly, with no threshold.
SIM_SUFFIXES = (
    "total_ticks",
    "busy_bank_ticks",
)


def classify(key: str):
    k = key.lower()
    for s in SIM_SUFFIXES:
        if k.endswith(s):
            return "sim"
    for s in HIGHER_BETTER_SUFFIXES:
        if k.endswith(s):
            return "higher"
    for s in LOWER_BETTER_SUFFIXES:
        if k.endswith(s):
            return "lower"
    return None


def numeric_leaves(node, path=""):
    """Yields (path, value) for every classified numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from numeric_leaves(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from numeric_leaves(value, f"{path}[{i}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        key = path.rsplit(".", 1)[-1].split("[", 1)[0]
        if classify(key) is not None:
            yield path, float(node)


def diff_file(name, prev, curr, threshold):
    prev_leaves = dict(numeric_leaves(prev))
    curr_leaves = dict(numeric_leaves(curr))
    rows = []
    regressions = 0
    for path in sorted(set(prev_leaves) & set(curr_leaves)):
        key = path.rsplit(".", 1)[-1].split("[", 1)[0]
        direction = classify(key)
        p, c = prev_leaves[path], curr_leaves[path]
        if p == 0 and c == 0:
            continue
        delta = (c - p) / abs(p) * 100.0 if p != 0 else float("inf")
        if direction == "sim":
            # Deterministic: exact comparison, no noise threshold.
            status = "ok" if p == c else "**SIM-CHANGED**"
            if p != c:
                regressions += 1
            rows.append((path, p, c, delta, status))
            continue
        bad = delta < -threshold if direction == "higher" else delta > threshold
        good = delta > threshold if direction == "higher" else delta < -threshold
        status = "ok"
        if bad:
            status = "**REGRESSION**"
            regressions += 1
        elif good:
            status = "improved"
        rows.append((path, p, c, delta, status))
    if not rows:
        return regressions
    print(f"\n### {name}\n")
    print("| metric | previous | current | delta | status |")
    print("|--------|----------|---------|-------|--------|")
    for path, p, c, delta, status in rows:
        print(f"| `{path}` | {p:.4g} | {c:.4g} | {delta:+.1f}% | {status} |")
    return regressions


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("prev_dir")
    parser.add_argument("curr_dir")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="flag moves beyond this percentage")
    args = parser.parse_args()

    prev_files = {f for f in os.listdir(args.prev_dir)
                  if f.startswith("BENCH_") and f.endswith(".json")}
    curr_files = {f for f in os.listdir(args.curr_dir)
                  if f.startswith("BENCH_") and f.endswith(".json")}
    common = sorted(prev_files & curr_files)

    print("## Benchmark diff vs previous run")
    if not common:
        print("\nNo benchmark files in common; nothing to compare.")
        return 0

    total = 0
    for name in common:
        try:
            with open(os.path.join(args.prev_dir, name)) as f:
                prev = json.load(f)
            with open(os.path.join(args.curr_dir, name)) as f:
                curr = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"\n`{name}`: unreadable ({e})")
            continue
        total += diff_file(name, prev, curr, args.threshold)

    only_new = sorted(curr_files - prev_files)
    if only_new:
        print(f"\nNew benchmarks (no baseline): {', '.join(only_new)}")
    print()
    if total:
        print(f"**{total} metric(s) regressed beyond the "
              f"{args.threshold:.0f}% threshold or drifted on the "
              f"simulated clock.**")
    else:
        print(f"No regressions beyond the {args.threshold:.0f}% threshold; "
              f"simulated-clock metrics unchanged.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
