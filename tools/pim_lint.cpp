// pim_lint: static verifier CLI over the repo's plan-shaped artifacts.
//
// With no arguments it lints the built-in corpus — every predicate
// shape the lowering can emit (op x width x constant sweep), the
// planner's golden query specs, an allocator-produced co-location
// binding, a cross-shard plan sample, and the canonical wire schema —
// and prints one line per artifact family. Any finding is printed
// with its stable ID ("V006 dead-instruction @3: ...") and the exit
// code is 1; a clean corpus exits 0; usage errors exit 2.
//
//   pim_lint              lint the built-in corpus
//   pim_lint --self-test  prove every catalog ID fires on seeded-bad input
//   pim_lint --dump       print the diagnostic catalog
//   pim_lint --report F   also write a JSON report to file F
//
// CI runs `pim_lint` and `pim_lint --self-test` on every push: the
// first gates the producers (a planner change that emits a dead step
// fails the build), the second gates the verifier itself (a checker
// refactor that stops emitting an ID fails the build).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "db/bitweaving.h"
#include "db/lowering.h"
#include "dram/ambit.h"
#include "query/plan.h"
#include "verify/selftest.h"
#include "verify/verify.h"

namespace {

using pim::verify::report;

struct lint_outcome {
  std::string family;
  int artifacts = 0;
  std::vector<report> findings;  // non-clean reports only
};

/// Every predicate shape the lowering emits: op x width x constants
/// around the interesting boundaries (0, 1, mid, max-1, max).
lint_outcome lint_lowering_sweep() {
  lint_outcome out;
  out.family = "lower_predicate sweep";
  using pim::db::cmp_op;
  const cmp_op ops[] = {cmp_op::eq, cmp_op::ne, cmp_op::lt, cmp_op::le,
                        cmp_op::gt, cmp_op::ge, cmp_op::between};
  for (int width : {1, 2, 3, 4, 8, 12, 16, 32}) {
    const std::uint64_t max = (width == 32) ? 0xFFFFFFFFull
                                            : ((1ull << width) - 1);
    std::vector<std::uint32_t> values = {0, 1,
                                         static_cast<std::uint32_t>(max / 2),
                                         static_cast<std::uint32_t>(max)};
    if (max > 1) values.push_back(static_cast<std::uint32_t>(max - 1));
    for (const cmp_op op : ops) {
      for (const std::uint32_t v : values) {
        pim::db::predicate pred;
        pred.op = op;
        pred.value = v;
        pred.value2 = static_cast<std::uint32_t>(max);  // between upper bound
        const pim::db::scan_program prog =
            pim::db::lower_predicate(width, pred);
        report r = pim::verify::check_program(prog);
        ++out.artifacts;
        if (!r.ok()) {
          r.artifact = "lower(width " + std::to_string(width) + ", op " +
                       std::to_string(static_cast<int>(op)) + ", value " +
                       std::to_string(v) + ")";
          out.findings.push_back(std::move(r));
        }
      }
    }
  }
  return out;
}

/// The planner goldens: the query shapes tests/query_test.cpp pins
/// down, plus aggregate variants.
lint_outcome lint_planner_goldens() {
  lint_outcome out;
  out.family = "planner goldens";
  using namespace pim::query;
  table_schema schema;
  schema.columns = {{"x", 8}, {"y", 6}, {"z", 3}};

  auto leaf = [](const std::string& col, pim::db::cmp_op op, std::uint32_t v,
                 std::uint32_t v2 = 0) {
    pim::db::predicate p;
    p.op = op;
    p.value = v;
    p.value2 = v2;
    return predicate_node::leaf(col, p);
  };

  std::vector<query_spec> specs;
  using pim::db::cmp_op;
  specs.push_back({leaf("z", cmp_op::lt, 5), agg_kind::count, ""});
  specs.push_back({leaf("x", cmp_op::ge, 6), agg_kind::count, ""});
  specs.push_back({predicate_node::land(leaf("x", cmp_op::lt, 100),
                                        leaf("y", cmp_op::ge, 16)),
                   agg_kind::count, ""});
  specs.push_back({predicate_node::lor(leaf("x", cmp_op::eq, 7),
                                       leaf("y", cmp_op::lt, 8)),
                   agg_kind::count, ""});
  specs.push_back({predicate_node::lnot(leaf("y", cmp_op::between, 40, 50)),
                   agg_kind::count, ""});
  specs.push_back({leaf("x", cmp_op::lt, 32), agg_kind::sum, "y"});
  specs.push_back({predicate_node::land(
                       leaf("z", cmp_op::ne, 2),
                       predicate_node::lor(leaf("x", cmp_op::le, 200),
                                           leaf("y", cmp_op::gt, 3))),
                   agg_kind::sum, "z"});

  for (const query_spec& spec : specs) {
    const query_plan plan = plan_query(schema, spec);
    report r = pim::verify::check_plan(schema, plan);
    ++out.artifacts;
    if (!r.ok()) {
      r.artifact = "plan_query golden #" + std::to_string(out.artifacts - 1);
      out.findings.push_back(std::move(r));
    }
  }
  return out;
}

/// A real allocator group: the co-location invariant pim_table builds
/// on, checked as the executor would bind a three-operand step.
lint_outcome lint_allocator_binding() {
  lint_outcome out;
  out.family = "allocator co-location";
  const pim::dram::organization org;
  pim::dram::ambit_allocator alloc(org);
  // Multi-row vectors force the group to stripe across banks — the
  // invariant must hold per logical row index, not per vector.
  const pim::bits size = org.row_bits() * 3;
  const std::vector<pim::dram::bulk_vector> group =
      alloc.allocate_group(size, 3);
  pim::verify::resolved_step step;
  step.operands = group;
  report r = pim::verify::check_colocation(org, {step});
  ++out.artifacts;
  if (!r.ok()) out.findings.push_back(std::move(r));
  return out;
}

/// Cross-shard plan sample mirroring what submit_cross stages.
lint_outcome lint_cross_plan_sample() {
  lint_outcome out;
  out.family = "cross-shard plan";
  auto vec = [](pim::service::session_id owner, int first_row) {
    pim::service::shared_vector sv;
    sv.owner = owner;
    sv.v.size = 4096;
    sv.v.rows = {pim::dram::address{-1, 0, 0, first_row, 0}};
    return sv;
  };
  std::vector<pim::verify::cross_op> ops;
  // t = a AND b; d = NOT t — the t hazard is ordered by program order.
  pim::verify::cross_op first;
  first.op = pim::dram::bulk_op::and_op;
  first.a = vec(1, 0);
  first.b = vec(2, 1);
  first.d = vec(1, 2);
  ops.push_back(first);
  pim::verify::cross_op second;
  second.op = pim::dram::bulk_op::not_op;
  second.a = vec(1, 2);
  second.d = vec(2, 3);
  ops.push_back(second);
  report r = pim::verify::check_cross_plan(ops, {{1, 0}, {2, 1}});
  ++out.artifacts;
  if (!r.ok()) out.findings.push_back(std::move(r));
  return out;
}

lint_outcome lint_wire_schema() {
  lint_outcome out;
  out.family = "wire schema";
  report r =
      pim::verify::check_wire_schema(pim::verify::canonical_wire_schema());
  ++out.artifacts;
  if (!r.ok()) out.findings.push_back(std::move(r));
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void write_json_report(const std::string& path,
                       const std::vector<lint_outcome>& outcomes, bool ok) {
  std::ofstream f(path);
  f << "{\n  \"ok\": " << (ok ? "true" : "false") << ",\n  \"families\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const lint_outcome& o = outcomes[i];
    f << "    {\"family\": \"" << json_escape(o.family)
      << "\", \"artifacts\": " << o.artifacts << ", \"findings\": [";
    bool first = true;
    for (const report& r : o.findings) {
      for (const pim::verify::diagnostic& d : r.diagnostics) {
        if (!first) f << ", ";
        first = false;
        f << "{\"id\": \"" << pim::verify::id_of(d.d) << "\", \"artifact\": \""
          << json_escape(r.artifact) << "\", \"location\": " << d.location
          << ", \"message\": \"" << json_escape(d.message) << "\"}";
      }
    }
    f << "]}" << (i + 1 < outcomes.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
}

int run_corpus_lint(const std::string& report_path) {
  const std::vector<lint_outcome> outcomes = {
      lint_lowering_sweep(), lint_planner_goldens(), lint_allocator_binding(),
      lint_cross_plan_sample(), lint_wire_schema()};
  bool ok = true;
  for (const lint_outcome& o : outcomes) {
    std::cout << o.family << ": " << o.artifacts << " artifact"
              << (o.artifacts == 1 ? "" : "s") << ", "
              << (o.findings.empty() ? "clean"
                                     : std::to_string(o.findings.size()) +
                                           " with findings")
              << "\n";
    for (const report& r : o.findings) {
      ok = false;
      std::cout << "  " << r.artifact << ":\n";
      for (const pim::verify::diagnostic& d : r.diagnostics) {
        std::cout << "    " << pim::verify::id_of(d.d) << " "
                  << pim::verify::info_of(d.d).title << " @" << d.location
                  << ": " << d.message << "\n";
      }
    }
  }
  if (!report_path.empty()) write_json_report(report_path, outcomes, ok);
  std::cout << (ok ? "pim_lint: corpus clean" : "pim_lint: FINDINGS") << "\n";
  return ok ? 0 : 1;
}

int run_self_test() {
  const auto results = pim::verify::run_selftest();
  std::cout << pim::verify::to_string(results);
  bool ok = true;
  for (const auto& r : results) {
    if (!r.fired) ok = false;
  }
  for (const auto& [name, r] : pim::verify::baseline_reports()) {
    std::cout << name << ": " << (r.ok() ? "clean" : r.to_string()) << "\n";
    if (!r.ok()) ok = false;
  }
  std::cout << (ok ? "self-test: all " + std::to_string(results.size()) +
                         " diagnostics fire"
                   : "self-test: FAILED")
            << "\n";
  return ok ? 0 : 1;
}

int dump_catalog() {
  for (const pim::verify::diag_info& info : pim::verify::catalog()) {
    std::cout << pim::verify::id_of(info.d) << " " << info.title << ": "
              << info.summary << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  bool dump = false;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      std::cerr << "usage: pim_lint [--self-test] [--dump] [--report FILE]\n";
      return 2;
    }
  }
  if (dump) return dump_catalog();
  if (self_test) return run_self_test();
  return run_corpus_lint(report_path);
}
